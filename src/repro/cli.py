"""Command-line interface for the PIC PRK.

Subcommands::

    pic-prk serial  --cells 128 --particles 20000 --steps 100 --dist geometric --r 0.97
    pic-prk run     --impl mpi-2d-LB --cores 24 --cells 288 --particles 24000 --steps 150
    pic-prk run     --spec run.json                               # declarative RunSpec
    pic-prk run     --spec run.json --cores 48 --dry-run          # resolved spec + hash
    pic-prk trace   --impl ampi --cores 16 --steps 160            # imbalance timeline
    pic-prk trace   --impl ampi --cores 16 --out traces/          # + trace.json etc.
    pic-prk figures fig5 fig6l fig6r fig7                         # regenerate figures
    pic-prk campaign benchmarks/campaigns/fig6l.json              # cached sweep
    pic-prk perf    --preset smoke                                # wall-clock speedups
    pic-prk run     --impl ampi --faults plan.json --checkpoint-every 25
    pic-prk resume  --from checkpoints/ckpt_step000050.ckpt       # continue a run
    pic-prk resilience --preset smoke                             # straggler bench

Every run is configured through one declarative
:class:`repro.config.RunSpec`: the flags below build one, ``--spec FILE``
loads one (explicit flags override the file's values), and ``--dry-run``
prints the fully-resolved spec plus its content hash without running.
Executor backend and worker count resolve CLI > ``REPRO_EXECUTOR`` /
``REPRO_WORKERS`` > spec file > serial (see :mod:`repro.config.env`).

``run`` and ``perf`` accept ``--profile``: the command runs under cProfile
and the top 20 functions by cumulative time are printed afterwards — the
quickest way to see where the harness's wall-clock time goes.

``trace --out DIR`` additionally records fine-grained spans and metrics and
writes ``trace.json`` (Chrome/Perfetto format — open at ui.perfetto.dev),
``timeline.txt`` (plain-text per-rank span listing) and ``metrics.json``
(every counter/gauge/histogram) into DIR; see docs/observability.md.

``campaign DECL.json`` expands a declarative sweep into a RunSpec matrix
and executes it with content-addressed result caching (a re-run completes
from cache; see docs/campaigns.md).

(Equivalently: ``python -m repro.cli ...``.)  All runs end with the PRK's
exact self-verification; a failing run exits non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import Sequence

from repro.config import ConfigError, ExecutorConfig, RunSpec, diff_docs
from repro.core.simulation import run_serial
from repro.core.spec import Distribution, PICSpec, Region, spec_to_dict
from repro.instrument import (
    ExecutorTrace,
    MetricsRegistry,
    TraceCollector,
    Tracer,
    render_imbalance_timeline,
    render_metrics_summary,
    render_rank_timeline,
    write_chrome_trace,
    write_executor_trace,
    write_metrics,
)
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel


def _add_spec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cells", type=int, default=128, help="mesh cells per side (even)")
    p.add_argument("--particles", type=int, default=20_000)
    p.add_argument("--steps", type=int, default=100)
    p.add_argument(
        "--dist",
        choices=[d.value for d in Distribution],
        default=Distribution.GEOMETRIC.value,
    )
    p.add_argument("--r", type=float, default=0.97, help="geometric ratio")
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--beta", type=float, default=3.0)
    p.add_argument(
        "--patch", type=int, nargs=4, metavar=("XLO", "XHI", "YLO", "YHI"),
        help="patch region in cells (for --dist patch)",
    )
    p.add_argument("--k", type=int, default=0, help="drift multiplier: 2k+1 cells/step")
    p.add_argument("--m", type=int, default=0, help="vertical cells per step")
    p.add_argument("--rotate90", action="store_true")
    p.add_argument("--seed", type=int, default=42)


def _spec_from(args: argparse.Namespace) -> PICSpec:
    return PICSpec(
        cells=args.cells,
        n_particles=args.particles,
        steps=args.steps,
        distribution=Distribution(args.dist),
        r=args.r,
        alpha=args.alpha,
        beta=args.beta,
        patch=Region(*args.patch) if args.patch else None,
        k=args.k,
        m_vertical=args.m,
        rotate90=args.rotate90,
        seed=args.seed,
    )


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--impl", choices=["mpi-2d", "mpi-2d-LB", "ampi"], default="mpi-2d")
    p.add_argument("--cores", type=int, default=24)
    p.add_argument("--push-ns", type=float, default=3500.0,
                   help="modelled particle push time in nanoseconds")
    p.add_argument("--lb-interval", type=int, default=2)
    p.add_argument("--border-width", type=int, default=3)
    p.add_argument("--threshold", type=float, default=0.02)
    p.add_argument("--axes", choices=["x", "y", "xy"], default="x")
    p.add_argument("--overdecomposition", "-d", type=int, default=8)
    p.add_argument("--ampi-interval", type=int, default=25)
    p.add_argument(
        "--executor",
        choices=["serial", "batched", "process"],
        default=None,
        help="compute-execution backend for the particle push "
        "(precedence: this flag > REPRO_EXECUTOR > --spec file > serial)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --executor process (0 = one per host "
        "core; precedence: this flag > REPRO_WORKERS > --spec file > 0)",
    )
    p.add_argument(
        "--kernel-backend",
        choices=["python", "compiled", "compiled-parallel", "auto"],
        default=None,
        help="particle-push kernel: python (numpy), compiled (numba, "
        "requires the repro[compiled] extra), compiled-parallel (numba "
        "prange over fixed chunks, same extra) or auto (compiled when "
        "available; results are bitwise identical in every case; "
        "precedence: this flag > REPRO_KERNEL_BACKEND > --spec file > auto)",
    )
    p.add_argument(
        "--dispatch",
        choices=["ring", "pipe"],
        default=None,
        help="process-pool task dispatch path: ring (zero-copy shared-"
        "memory task rings, the default) or pipe (legacy pickled "
        "descriptors, kept for A/B measurement; precedence: this flag > "
        "REPRO_DISPATCH > --spec file > ring)",
    )


def _add_spec_file_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--spec", metavar="FILE.json", default=None,
        help="load a declarative RunSpec; explicit flags override its values",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="print the fully-resolved RunSpec and its content hash, "
        "then exit without running",
    )


def _add_resilience_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults", metavar="PLAN.json", default=None,
        help="activate a deterministic fault plan (see docs/resilience.md); "
        "also arms the straggler watch and a default recovery policy",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint the full simulation state every N steps (0 = off)",
    )
    p.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        help="directory for checkpoint files (default: checkpoints)",
    )


# ----------------------------------------------------------------------
# CLI -> RunSpec
#
# Every run subcommand goes through one declarative RunSpec
# (repro.config).  Without --spec the flag values (defaults included) are
# authoritative, reproducing the historical CLI behavior exactly; with
# --spec the file is the base and only *explicitly typed* flags override
# it — argparse defaults must not clobber the file, which is why main()
# records the explicitly-set destinations in ``args._explicit`` (via a
# second parse with all defaults suppressed).
# ----------------------------------------------------------------------
def _explicit_set(args: argparse.Namespace) -> set:
    """Destinations the user typed (everything, if main() didn't run)."""
    return getattr(args, "_explicit", set(vars(args)))


def _cli_value(args: argparse.Namespace, dest: str):
    """The flag's value if explicitly typed, else None (= fall through)."""
    return getattr(args, dest, None) if dest in _explicit_set(args) else None


#: argparse destination -> RunSpec dotted path, for --spec overrides.
_WORKLOAD_PATHS = (
    ("cells", "workload.cells"),
    ("particles", "workload.n_particles"),
    ("steps", "workload.steps"),
    ("dist", "workload.distribution"),
    ("r", "workload.r"),
    ("alpha", "workload.alpha"),
    ("beta", "workload.beta"),
    ("k", "workload.k"),
    ("m", "workload.m_vertical"),
    ("rotate90", "workload.rotate90"),
    ("seed", "workload.seed"),
)

_LB_PATHS = (
    ("lb_interval", "impl.lb_interval"),
    ("border_width", "impl.border_width"),
    ("threshold", "impl.threshold_fraction"),
    ("axes", "impl.axes"),
)

_AMPI_PATHS = (
    ("overdecomposition", "impl.overdecomposition"),
    ("ampi_interval", "impl.lb_interval"),
)


def _impl_doc_from(args: argparse.Namespace) -> dict:
    """The impl section the parallel flags describe (no --spec case)."""
    doc: dict = {"name": args.impl, "cores": args.cores}
    if args.impl == "mpi-2d-LB":
        doc.update(
            lb_interval=args.lb_interval,
            border_width=args.border_width,
            threshold_fraction=args.threshold,
            axes=args.axes,
        )
    elif args.impl == "ampi":
        doc.update(
            overdecomposition=args.overdecomposition,
            lb_interval=args.ampi_interval,
        )
    return doc


def _resilience_overrides(args: argparse.Namespace, explicit_only: bool) -> dict:
    over: dict = {}
    explicit = _explicit_set(args)
    faults = getattr(args, "faults", None)
    if faults and (not explicit_only or "faults" in explicit):
        from repro.resilience import FaultPlan

        over["resilience.faults"] = FaultPlan.load(faults).to_dict()
    if getattr(args, "checkpoint_every", 0) and (
        not explicit_only or "checkpoint_every" in explicit
    ):
        over["resilience.checkpoint_every"] = args.checkpoint_every
    if hasattr(args, "checkpoint_dir") and (
        not explicit_only or "checkpoint_dir" in explicit
    ):
        over["resilience.checkpoint_dir"] = args.checkpoint_dir
    return over


def _runspec_from(args: argparse.Namespace, *, serial: bool = False) -> RunSpec:
    """The RunSpec this invocation describes (CLI flags over --spec file)."""
    from repro.config.runspec import apply_overrides

    spec_path = getattr(args, "spec", None)
    if not spec_path:
        doc: dict = {
            "workload": spec_to_dict(_spec_from(args)),
            "impl": {"name": "serial"} if serial else _impl_doc_from(args),
        }
        if not serial:
            doc["cost"] = {"particle_push_s": args.push_ns * 1e-9}
            doc = apply_overrides(doc, _resilience_overrides(args, False))
        return RunSpec.from_dict(doc)

    base = RunSpec.load(spec_path).to_dict()
    explicit = _explicit_set(args)
    over: dict = {}
    for dest, path in _WORKLOAD_PATHS:
        if dest in explicit:
            over[path] = getattr(args, dest)
    if "patch" in explicit and args.patch:
        region = Region(*args.patch)
        over["workload.patch"] = {
            "x_lo": region.x_lo, "x_hi": region.x_hi,
            "y_lo": region.y_lo, "y_hi": region.y_hi,
        }
    if serial:
        # `pic-prk serial` runs the reference kernel no matter which
        # implementation the spec file names.
        base["impl"] = {"name": "serial"}
    else:
        name = args.impl if "impl" in explicit else base["impl"].get("name")
        if "impl" in explicit and name != base["impl"].get("name"):
            # Stale tunables of the replaced impl would otherwise be
            # rejected as not-applicable; the flags redefine the section
            # (keeping the file's core count unless --cores was typed).
            file_cores = base["impl"].get("cores", 1)
            base["impl"] = _impl_doc_from(args)
            if "cores" not in explicit:
                base["impl"]["cores"] = file_cores
        else:
            over["impl.name"] = name
            if "cores" in explicit:
                over["impl.cores"] = args.cores
            paths = _LB_PATHS if name == "mpi-2d-LB" else (
                _AMPI_PATHS if name == "ampi" else ()
            )
            for dest, path in paths:
                if dest in explicit:
                    over[path] = getattr(args, dest)
        if "push_ns" in explicit:
            over["cost.particle_push_s"] = args.push_ns * 1e-9
        over.update(_resilience_overrides(args, True))
    return RunSpec.from_dict(apply_overrides(base, over))


def _print_resolved(args: argparse.Namespace, rs: RunSpec) -> int:
    """--dry-run: the fully-resolved spec (driver defaults filled in)."""
    from repro.config.build import canonical_runspec
    from repro.config.env import (
        resolve_dispatch,
        resolve_executor,
        resolve_kernel_backend,
        resolve_ring_slots,
        resolve_workers,
    )
    from repro.core.kernel_compiled import resolve_backend

    # The precedence chain yields the *request* (possibly "auto"); what a
    # run would actually execute is the concrete backend, so map through
    # resolve_backend — the same call build_executor makes — before
    # printing.  An unsatisfiable request (compiled without numba) fails
    # here exactly as the real run would.
    effective_backend = resolve_backend(
        resolve_kernel_backend(
            _cli_value(args, "kernel_backend"), rs.executor.kernel_backend
        )
    )
    resolved = canonical_runspec(rs).with_overrides(
        executor=ExecutorConfig(
            kind=resolve_executor(_cli_value(args, "executor"), rs.executor.kind),
            workers=resolve_workers(_cli_value(args, "workers"), rs.executor.workers),
            kernel_backend=effective_backend,
            dispatch=resolve_dispatch(
                _cli_value(args, "dispatch"), rs.executor.dispatch
            ),
            ring_slots=resolve_ring_slots(None, rs.executor.ring_slots),
        )
    )
    print(resolved.to_json())
    print(f"spec hash: {resolved.spec_hash()}")
    return 0


def _maybe_profile(args: argparse.Namespace, fn):
    """Run ``fn`` — under cProfile, printing the top 20, if ``--profile``."""
    if not getattr(args, "profile", False):
        return fn()
    import cProfile
    import pstats

    prof = cProfile.Profile()
    rc = prof.runcall(fn)
    print("\n--- cProfile: top 20 by cumulative time ---")
    pstats.Stats(prof).sort_stats("cumulative").print_stats(20)
    return rc


def cmd_serial(args: argparse.Namespace) -> int:
    rs = _runspec_from(args, serial=True)
    if args.dry_run:
        return _print_resolved(args, rs)
    result = run_serial(rs.workload)
    print(f"spec: {rs.workload.describe()}")
    print(result.verification)
    print(f"particle pushes: {result.particle_pushes:,}")
    return 0 if result.verification.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    rs = _runspec_from(args)
    if args.dry_run:
        return _print_resolved(args, rs)
    from repro.config.build import build_executor, build_impl
    from repro.config.env import resolve_executor

    kind = resolve_executor(_cli_value(args, "executor"), rs.executor.kind)
    if getattr(args, "profile", False) and kind == "process":
        print(
            "error: --profile cannot observe worker processes; cProfile only "
            "sees the parent, so the profile would be misleading. Use "
            "--executor serial (or batched) to profile, or drop --profile "
            "to measure the process backend (see docs/performance.md).",
            file=sys.stderr,
        )
        return 2
    executor = build_executor(
        rs, cli_kind=_cli_value(args, "executor"),
        cli_workers=_cli_value(args, "workers"),
        cli_kernel_backend=_cli_value(args, "kernel_backend"),
        cli_dispatch=_cli_value(args, "dispatch"),
    )
    impl = build_impl(rs, executor=executor)
    resilience = impl.resilience
    try:
        result = _maybe_profile(args, impl.run)
    finally:
        executor.close()
    print(f"spec: {impl.spec.describe()}")
    print(
        f"{result.implementation} on {result.n_cores} simulated cores: "
        f"{result.total_time:.4f}s simulated"
    )
    print(
        f"max particles/core {result.max_particles_per_core} "
        f"(ideal {result.ideal_particles_per_core:.0f}), "
        f"messages {result.messages_sent}, bytes {result.bytes_sent}"
    )
    _report_resilience(resilience)
    print(result.verification)
    return 0 if result.verification.ok else 1


def _report_resilience(resilience) -> None:
    if resilience is None:
        return
    if resilience.watch is not None and resilience.watch.stragglers():
        print(f"stragglers still flagged: {resilience.watch.stragglers()}")
    ck = resilience.checkpointer
    if ck is not None and ck.last_path is not None:
        print(f"latest checkpoint: {ck.last_path}")


def cmd_trace(args: argparse.Namespace) -> int:
    rs = _runspec_from(args)
    if args.dry_run:
        return _print_resolved(args, rs)
    from repro.config.build import build_executor, build_impl
    from repro.config.env import resolve_executor

    kind = resolve_executor(_cli_value(args, "executor"), rs.executor.kind)
    tracer = TraceCollector()
    spans = Tracer() if args.out else None
    metrics = MetricsRegistry() if args.out else None
    exec_spans = ExecutorTrace() if args.out and kind == "process" else None
    executor = build_executor(
        rs, cli_kind=_cli_value(args, "executor"),
        cli_workers=_cli_value(args, "workers"),
        cli_kernel_backend=_cli_value(args, "kernel_backend"),
        cli_dispatch=_cli_value(args, "dispatch"),
        exec_tracer=exec_spans,
    )
    impl = build_impl(
        rs, tracer=tracer, span_tracer=spans, metrics=metrics, executor=executor
    )
    try:
        result = impl.run()
    finally:
        executor.close()
    print(render_imbalance_timeline(tracer))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        trace_path = os.path.join(args.out, "trace.json")
        timeline_path = os.path.join(args.out, "timeline.txt")
        metrics_path = os.path.join(args.out, "metrics.json")
        write_chrome_trace(spans, trace_path)
        with open(timeline_path, "w", encoding="utf-8") as fh:
            fh.write(render_rank_timeline(spans))
            fh.write("\n")
        write_metrics(metrics, metrics_path)
        print(render_metrics_summary(metrics))
        print(f"wrote {trace_path} (open at https://ui.perfetto.dev)")
        print(f"wrote {timeline_path}")
        print(f"wrote {metrics_path}")
        if exec_spans is not None:
            exec_path = os.path.join(args.out, "executor_trace.json")
            write_executor_trace(exec_spans, exec_path)
            print(f"wrote {exec_path} (wall-clock worker spans)")
    print(result.verification)
    return 0 if result.verification.ok else 1


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.bench import perf

    print(f"wall-clock perf suite (preset={args.preset}):")
    doc = _maybe_profile(args, lambda: perf.run_suite(args.preset))
    if args.out:
        perf.save_bench(doc, args.out)
        print(f"wrote {args.out}")
    failures = perf.check_gates(doc)
    if args.baseline:
        failures += perf.check_regression(
            doc, perf.load_bench(args.baseline), args.tolerance
        )
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


def _impl_from_snapshot(snapshot, args: argparse.Namespace):
    """Rebuild an implementation from *legacy* checkpoint metadata.

    Pre-RunSpec checkpoints carry loose ``impl``/``spec``/``params`` keys
    instead of an embedded ``runspec`` document; this path keeps them
    resumable.  New checkpoints go through :func:`_impl_from_runspec`.
    """
    from repro.resilience import (
        Checkpointer,
        FaultPlan,
        RecoveryPolicy,
        ResilienceConfig,
        StragglerWatch,
        spec_from_dict,
    )

    meta = snapshot.meta
    spec = spec_from_dict(meta["spec"])
    machine = MachineModel()
    cost = CostModel(
        machine=machine, particle_push_s=meta["cost"]["particle_push_s"]
    )
    rmeta = meta.get("resilience", {})
    plan = watch = recovery = checkpointer = None
    if rmeta.get("plan") is not None:
        plan = FaultPlan.from_dict(rmeta["plan"])
    if rmeta.get("watch") is not None:
        watch = StragglerWatch(snapshot.n_ranks, **rmeta["watch"])
    if rmeta.get("recovery") is not None:
        recovery = RecoveryPolicy(**rmeta["recovery"])
    every = int(rmeta.get("checkpoint_every", 0))
    if every > 0:
        checkpointer = Checkpointer(args.checkpoint_dir, every=every)
    resilience = ResilienceConfig(
        plan=plan, watch=watch, checkpointer=checkpointer,
        recovery=recovery, resume=snapshot,
    )

    from repro.config.env import (
        resolve_executor,
        resolve_kernel_backend,
        resolve_workers,
    )
    from repro.runtime.executor import make_executor

    executor = make_executor(
        resolve_executor(_cli_value(args, "executor")),
        workers=resolve_workers(_cli_value(args, "workers")),
        kernel_backend=resolve_kernel_backend(
            _cli_value(args, "kernel_backend")
        ),
    )
    params = meta.get("params", {})
    common = dict(
        machine=machine, cost=cost, dims=tuple(meta["dims"]),
        executor=executor, resilience=resilience,
    )
    impl_name = meta.get("impl")
    if impl_name == "mpi-2d":
        impl = Mpi2dPIC(spec, meta["n_cores"], **common)
    elif impl_name == "mpi-2d-LB":
        impl = Mpi2dLbPIC(spec, meta["n_cores"], **params, **common)
    elif impl_name == "ampi":
        impl = AmpiPIC(spec, meta["n_cores"], **params, **common)
    else:
        raise SystemExit(f"checkpoint names unknown implementation {impl_name!r}")
    return impl, executor, resilience


def _impl_from_runspec(snapshot, args: argparse.Namespace):
    """Rebuild the run from the checkpoint's embedded RunSpec document."""
    from repro.config.build import build_executor, build_impl

    rs = RunSpec.from_dict(snapshot.meta["runspec"])
    # The checkpoint directory is an IO location, not identity: the
    # resumed run keeps checkpointing into --checkpoint-dir.
    rs = rs.with_overrides(
        resilience=replace(rs.resilience, checkpoint_dir=args.checkpoint_dir)
    )
    executor = build_executor(
        rs, cli_kind=_cli_value(args, "executor"),
        cli_workers=_cli_value(args, "workers"),
        cli_kernel_backend=_cli_value(args, "kernel_backend"),
        cli_dispatch=_cli_value(args, "dispatch"),
    )
    impl = build_impl(rs, executor=executor, resume=snapshot)
    return impl, executor, impl.resilience


def _check_resume_spec(args: argparse.Namespace, snapshot) -> int:
    """Validate --spec against the checkpoint's embedded RunSpec hash.

    Returns 0 when compatible; prints the differing identity fields and
    returns 2 when not.
    """
    from repro.config.build import canonical_runspec

    requested = canonical_runspec(RunSpec.load(args.spec))
    have_hash = snapshot.meta.get("runspec_hash")
    if have_hash is None:
        print(
            "error: checkpoint predates embedded RunSpecs and cannot be "
            "validated against --spec; resume it without --spec",
            file=sys.stderr,
        )
        return 2
    if requested.spec_hash() == have_hash:
        return 0
    embedded = RunSpec.from_dict(snapshot.meta["runspec"])
    print(
        "error: checkpoint was written by a different run configuration\n"
        f"  requested spec hash {requested.spec_hash()[:16]}… != "
        f"checkpoint {have_hash[:16]}…\n"
        "  differing fields:",
        file=sys.stderr,
    )
    for line in diff_docs(requested.identity_dict(), embedded.identity_dict()):
        print(f"    {line}", file=sys.stderr)
    return 2


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.resilience import Snapshot

    snapshot = Snapshot.load(getattr(args, "from"))
    if getattr(args, "spec", None):
        rc = _check_resume_spec(args, snapshot)
        if rc != 0:
            return rc
    if snapshot.meta.get("runspec") is not None:
        impl, executor, resilience = _impl_from_runspec(snapshot, args)
    else:
        impl, executor, resilience = _impl_from_snapshot(snapshot, args)
    print(
        f"resuming {impl.name} at step {snapshot.next_step}/{impl.spec.steps} "
        f"({snapshot.n_ranks} ranks on {impl.n_cores} cores)"
    )
    try:
        result = impl.run()
    finally:
        executor.close()
    print(
        f"{result.implementation} on {result.n_cores} simulated cores: "
        f"{result.total_time:.4f}s simulated"
    )
    _report_resilience(resilience)
    print(result.verification)
    return 0 if result.verification.ok else 1


def cmd_resilience(args: argparse.Namespace) -> int:
    from repro.bench import resilience as bench_resilience

    print(f"resilience straggler bench (preset={args.preset}):")
    doc = bench_resilience.run_suite(args.preset)
    if args.out:
        bench_resilience.save_bench(doc, args.out)
        print(f"wrote {args.out}")
    failures = bench_resilience.check_gates(doc)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, FabricConfig, run_campaign

    campaign = CampaignSpec.load(args.declaration)
    fabric = FabricConfig(
        jobs=max(args.jobs, 1),
        io_batch=args.io_batch,
        heartbeat_timeout_s=args.heartbeat_timeout,
    )
    res = run_campaign(
        campaign,
        cache_dir=args.cache,
        jobs=args.jobs,
        force=args.force,
        progress=print,
        runner=args.runner,
        fabric=fabric,
        order_seed=args.order_seed,
    )
    summary = f"{len(res.outcomes)} points: {res.executed} executed, " \
        f"{res.cached} cached"
    if res.deduped:
        summary += f" ({res.deduped} deduplicated)"
    print(summary)
    if res.fabric and res.fabric.get("requeues"):
        print(
            f"fabric requeued {res.fabric['requeues']} point(s) after "
            f"{len(res.fabric['faults'])} worker fault(s)"
        )
    print(f"manifest: {res.manifest_path}")
    if args.expect_cached and res.executed:
        print(
            f"error: --expect-cached, but {res.executed} point(s) had to "
            "execute",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_multirun(args: argparse.Namespace) -> int:
    """Interleave several RunSpecs through one EngineGroup, one process.

    The demo entry point for the multiplexed engine core: N simulations
    time-slice over virtual time while sharing a single executor pool.
    Results are byte-identical to running each spec alone (the
    equivalence suite enforces it); only the wall-clock profile changes.
    """
    from repro.config.build import build_impl
    from repro.config.env import (
        resolve_executor,
        resolve_kernel_backend,
        resolve_workers,
    )
    from repro.instrument import write_engine_traces
    from repro.runtime.executor import make_executor
    from repro.runtime.multiplex import EngineGroup

    specs: list[tuple[str, RunSpec]] = []
    for path in args.specs:
        rs = RunSpec.load(path)
        stem = os.path.splitext(os.path.basename(path))[0]
        for copy in range(max(args.copies, 1)):
            if args.copies > 1:
                rs_i = rs.with_overrides(
                    workload=replace(rs.workload, seed=rs.workload.seed + copy)
                )
                specs.append((f"{stem}#{copy}", rs_i))
            else:
                specs.append((stem, rs))
    names = [name for name, _ in specs]
    if len(set(names)) != len(names):
        # Same file listed twice: disambiguate by position.
        specs = [(f"{name}@{i}", rs) for i, (name, rs) in enumerate(specs)]

    shared = make_executor(
        resolve_executor(_cli_value(args, "executor")),
        workers=resolve_workers(_cli_value(args, "workers")),
        kernel_backend=resolve_kernel_backend(_cli_value(args, "kernel_backend")),
    )
    tracers: dict[str, Tracer] = {}
    group = EngineGroup(
        policy=args.policy,
        slice_ticks=args.slice_ticks,
        order_seed=args.order_seed,
        executor=shared,
    )
    print(
        f"multiplexing {len(specs)} engines (policy={args.policy}, "
        f"slice={args.slice_ticks} ticks, executor={shared.name})"
    )
    ok = True
    try:
        for name, rs in specs:
            tracer = Tracer() if args.out else None
            if tracer is not None:
                tracers[name] = tracer
            impl = build_impl(
                rs, span_tracer=tracer, executor=group.handle(name)
            )
            group.add(name, impl.build_engine(engine_id=name))
        results = group.run_all()
        width = max(len(n) for n in results)
        for name in results:
            r = results[name]
            ok = ok and r.verification.ok
            mark = "ok" if r.verification.ok else "FAIL"
            print(
                f"  {name:<{width}}  {r.implementation} x{r.n_cores}: "
                f"{r.total_time:.4f}s simulated  [{mark}]"
            )
        stats = shared.tag_stats
        line = f"{group.slices} slices over {len(results)} engines"
        if stats:
            batches = sum(s["batches"] for s in stats.values())
            per_tag = ", ".join(
                f"{n}={stats[n]['tasks']}" for n in sorted(stats)
            )
            line += f"; shared pool ran {batches} batches (tasks: {per_tag})"
        print(line)
    finally:
        group.close()
    if args.out:
        for path in write_engine_traces(tracers, args.out):
            print(f"wrote {path}")
    return 0 if ok else 1


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench.figures import main as figures_main

    argv = [*args.names, "--out", args.out]
    if args.cache:
        argv += ["--cache", args.cache]
    return figures_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pic-prk", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serial", help="run and verify the serial kernel")
    _add_spec_args(p)
    _add_spec_file_args(p)
    p.set_defaults(fn=cmd_serial)

    p = sub.add_parser("run", help="run one parallel implementation")
    _add_spec_args(p)
    _add_parallel_args(p)
    _add_resilience_args(p)
    _add_spec_file_args(p)
    p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 20 by cumulative time",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "trace",
        help="run with tracing: imbalance timeline, plus span trace + "
        "metrics dumps with --out",
    )
    _add_spec_args(p)
    _add_parallel_args(p)
    _add_resilience_args(p)
    _add_spec_file_args(p)
    p.add_argument(
        "--out", metavar="DIR", default=None,
        help="also record spans + metrics and write trace.json "
        "(Chrome/Perfetto), timeline.txt and metrics.json into DIR",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "perf",
        help="measure wall-clock speedups of the hot path vs its legacy "
        "implementation and write BENCH_wallclock.json",
    )
    p.add_argument("--preset", choices=["full", "smoke"], default="full")
    p.add_argument(
        "--out", default="benchmarks/BENCH_wallclock.json", metavar="FILE",
        help="output JSON (empty string to skip writing)",
    )
    p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="prior BENCH_wallclock.json to gate speedup ratios against",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative speedup-ratio drop vs --baseline",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and print the top 20 by cumulative time",
    )
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser(
        "resume",
        help="continue a checkpointed run bitwise-identically to the "
        "uninterrupted one",
    )
    p.add_argument(
        "--from", required=True, metavar="FILE.ckpt",
        help="checkpoint file written by --checkpoint-every",
    )
    p.add_argument(
        "--checkpoint-dir", default="checkpoints", metavar="DIR",
        help="directory for the checkpoints the resumed run keeps taking",
    )
    p.add_argument(
        "--executor", choices=["serial", "batched", "process"], default=None,
        help="compute backend (precedence: this flag > REPRO_EXECUTOR > serial)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (precedence: this flag > REPRO_WORKERS > 0)",
    )
    p.add_argument(
        "--kernel-backend",
        choices=["python", "compiled", "compiled-parallel", "auto"],
        default=None,
        help="particle-push kernel (bitwise identical in every case, so a "
        "checkpoint written under one backend resumes under any other; "
        "precedence: this flag > REPRO_KERNEL_BACKEND > auto)",
    )
    p.add_argument(
        "--spec", metavar="FILE.json", default=None,
        help="require the checkpoint to match this RunSpec; a hash "
        "mismatch aborts, naming the differing fields",
    )
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser(
        "resilience",
        help="measure how much of a straggler-induced slowdown each "
        "implementation recovers and write BENCH_resilience.json",
    )
    p.add_argument("--preset", choices=["full", "smoke"], default="full")
    p.add_argument(
        "--out", default="benchmarks/BENCH_resilience.json", metavar="FILE",
        help="output JSON (empty string to skip writing)",
    )
    p.set_defaults(fn=cmd_resilience)

    p = sub.add_parser(
        "multirun",
        help="interleave several RunSpecs through one in-process "
        "EngineGroup sharing a single executor pool",
    )
    p.add_argument(
        "specs", nargs="+", metavar="SPEC.json",
        help="RunSpec files; each becomes one engine in the group",
    )
    p.add_argument(
        "--copies", type=int, default=1, metavar="N",
        help="run N seed-varied copies of every spec (workload seed += "
        "copy index)",
    )
    p.add_argument(
        "--policy", choices=["fair", "deadline"], default="fair",
        help="slice scheduling: round-robin over unfinished engines "
        "(fair) or always the engine furthest behind in virtual time "
        "(deadline)",
    )
    p.add_argument(
        "--slice-ticks", type=int, default=64, metavar="N",
        help="scheduler ticks granted per slice before rotating engines",
    )
    p.add_argument(
        "--order-seed", type=int, default=None, metavar="N",
        help="shuffle the fair policy's per-round engine order (results "
        "are interleaving-invariant; this only exercises that claim)",
    )
    p.add_argument(
        "--executor", choices=["serial", "batched", "process"], default=None,
        help="shared compute backend (flag > REPRO_EXECUTOR > serial)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the shared pool "
        "(flag > REPRO_WORKERS > 0)",
    )
    p.add_argument(
        "--kernel-backend",
        choices=["python", "compiled", "compiled-parallel", "auto"],
        default=None,
        help="particle-push kernel for the shared pool",
    )
    p.add_argument(
        "--out", metavar="DIR", default=None,
        help="record per-engine span traces and write one namespaced "
        "trace-<engine>.json per engine into DIR",
    )
    p.set_defaults(fn=cmd_multirun)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("names", nargs="+", choices=["fig5", "fig6l", "fig6r", "fig7"])
    p.add_argument("--out", default="benchmarks/results")
    p.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persistent campaign cache (re-runs complete from cache)",
    )
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "campaign",
        help="run a declarative sweep with a content-addressed result cache",
    )
    p.add_argument(
        "declaration", metavar="DECL.json",
        help="campaign declaration (see docs/campaigns.md and "
        "benchmarks/campaigns/)",
    )
    p.add_argument(
        "--cache", default="benchmarks/campaign-cache", metavar="DIR",
        help="result cache directory (default: benchmarks/campaign-cache)",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="run uncached points across N persistent warm workers "
        "(the work-stealing fabric; see docs/campaigns.md)",
    )
    p.add_argument(
        "--runner", choices=["fabric", "pool", "engines"], default="fabric",
        help="parallel runner for --jobs > 1: the work-stealing fabric "
        "(default) or the legacy upfront-submission process pool; "
        "'engines' instead interleaves all uncached points through one "
        "in-process EngineGroup sharing a single executor pool",
    )
    p.add_argument(
        "--order-seed", type=int, default=None, metavar="N",
        help="shuffle the engines runner's per-round slice order "
        "(artifact bytes are interleaving-invariant — CI runs two seeds "
        "and diffs the cache)",
    )
    p.add_argument(
        "--io-batch", type=int, default=8, metavar="N",
        help="completed points buffered before artifacts + the streamed "
        "manifest are flushed with one grouped fsync (fabric only)",
    )
    p.add_argument(
        "--heartbeat-timeout", type=float, default=120.0, metavar="SECONDS",
        help="declare a silent fabric worker lost (and requeue its "
        "point) after this many seconds without a heartbeat",
    )
    p.add_argument(
        "--force", action="store_true",
        help="re-execute even cached points (artifacts must reproduce "
        "byte-identically)",
    )
    p.add_argument(
        "--expect-cached", action="store_true",
        help="exit 1 if any point had to execute (CI determinism gate)",
    )
    p.set_defaults(fn=cmd_campaign)
    return parser


def _suppress_defaults(parser: argparse.ArgumentParser) -> None:
    """Make a parser record only explicitly-typed arguments.

    Used by main() on a second parser instance: parsing the same argv
    with every default suppressed yields a namespace whose keys are
    exactly the destinations the user typed — how --spec merging tells
    'flag left at its default' apart from 'flag typed'.
    """
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for sub in set(action.choices.values()):
                _suppress_defaults(sub)
        elif action.default is not argparse.SUPPRESS:
            action.default = argparse.SUPPRESS
    parser._defaults.clear()


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    aux = build_parser()
    _suppress_defaults(aux)
    args._explicit = set(vars(aux.parse_args(argv)))
    from repro.core.kernel_compiled import CompiledKernelUnavailable

    try:
        return args.fn(args)
    except (ConfigError, CompiledKernelUnavailable) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
