"""Processor-grid factorization (paper §IV-A).

The MPI implementations arrange ``P`` processors in a ``Px x Py`` grid that
is "as close to square as possible to minimize the communication volume".
:func:`factor_2d` produces that factorization deterministically, with
``Px >= Py`` so that the x direction — the direction the §III-E1 particle
cloud drifts in — has at least as many processor columns as rows.
"""

from __future__ import annotations

import math


def factor_2d(p: int) -> tuple[int, int]:
    """Factor ``p`` into ``(Px, Py)`` with ``Px * Py == p``, near-square,
    ``Px >= Py``.

    Prime ``p`` degenerates to ``(p, 1)`` — a 1D column decomposition, which
    is exactly the paper's Fig. 3 setting.
    """
    if p <= 0:
        raise ValueError("processor count must be positive")
    for py in range(int(math.isqrt(p)), 0, -1):
        if p % py == 0:
            return p // py, py
    raise AssertionError("unreachable: 1 always divides p")  # pragma: no cover


def grid_fits_mesh(cells: int, px: int, py: int) -> bool:
    """True when every processor block can hold at least one cell column/row."""
    return px <= cells and py <= cells
