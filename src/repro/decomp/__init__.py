"""Domain decomposition substrate: processor grids and block partitions."""

from repro.decomp.grid import factor_2d
from repro.decomp.partition import BlockPartition

__all__ = ["factor_2d", "BlockPartition"]
