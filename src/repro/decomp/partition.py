"""Cartesian-product block partitions with movable boundaries.

The domain's ``cells x cells`` mesh is split into ``Px x Py`` rectangular
blocks by two monotone split vectors: ``xsplits`` (length ``Px + 1``) and
``ysplits`` (length ``Py + 1``).  Processor ``(i, j)`` owns cell columns
``[xsplits[i], xsplits[i+1])`` and rows ``[ysplits[j], ysplits[j+1])``.

Keeping the decomposition a Cartesian *product* — all processors in one
column share the same x-extent — is the paper's deliberate design choice for
the diffusion load balancer (§IV-B): subdomains stay rectangular, neighbor
relations stay regular, and a boundary move is a single split adjustment.

The partition is immutable; load balancers produce new instances via
:meth:`BlockPartition.with_xsplits` / :meth:`with_ysplits`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def even_splits(cells: int, parts: int) -> np.ndarray:
    """Split ``cells`` into ``parts`` contiguous chunks as evenly as possible."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if parts > cells:
        raise ValueError(
            f"cannot split {cells} cell columns/rows into {parts} non-empty blocks"
        )
    return np.linspace(0, cells, parts + 1).round().astype(np.int64)


def _validate_splits(splits: np.ndarray, cells: int, what: str) -> np.ndarray:
    splits = np.asarray(splits, dtype=np.int64)
    if splits.ndim != 1 or len(splits) < 2:
        raise ValueError(f"{what} must be a 1D vector of at least 2 entries")
    if splits[0] != 0 or splits[-1] != cells:
        raise ValueError(f"{what} must start at 0 and end at {cells}")
    if np.any(np.diff(splits) < 1):
        raise ValueError(f"{what} must be strictly increasing (no empty blocks)")
    return splits


@dataclass(frozen=True)
class BlockPartition:
    """An immutable ``Px x Py`` Cartesian-product partition of the mesh."""

    cells: int
    xsplits: np.ndarray
    ysplits: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "xsplits", _validate_splits(self.xsplits, self.cells, "xsplits")
        )
        object.__setattr__(
            self, "ysplits", _validate_splits(self.ysplits, self.cells, "ysplits")
        )

    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, cells: int, px: int, py: int) -> "BlockPartition":
        """The static, evenly-split partition used by the mpi-2d baseline."""
        return cls(cells, even_splits(cells, px), even_splits(cells, py))

    @property
    def px(self) -> int:
        return len(self.xsplits) - 1

    @property
    def py(self) -> int:
        return len(self.ysplits) - 1

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def x_owner(self, cols):
        """Processor-column index owning each cell column (vectorized)."""
        return np.searchsorted(self.xsplits, np.asarray(cols), side="right") - 1

    def y_owner(self, rows):
        """Processor-row index owning each cell row (vectorized)."""
        return np.searchsorted(self.ysplits, np.asarray(rows), side="right") - 1

    def owner_rank(self, cols, rows):
        """Cartesian rank (row-major, matching CartComm) owning each cell."""
        return self.x_owner(cols) * self.py + self.y_owner(rows)

    # ------------------------------------------------------------------
    # Block geometry
    # ------------------------------------------------------------------
    def x_range(self, i: int) -> tuple[int, int]:
        return int(self.xsplits[i]), int(self.xsplits[i + 1])

    def y_range(self, j: int) -> tuple[int, int]:
        return int(self.ysplits[j]), int(self.ysplits[j + 1])

    def block_shape(self, i: int, j: int) -> tuple[int, int]:
        x0, x1 = self.x_range(i)
        y0, y1 = self.y_range(j)
        return x1 - x0, y1 - y0

    def block_cells(self, i: int, j: int) -> int:
        w, h = self.block_shape(i, j)
        return w * h

    def widths(self) -> np.ndarray:
        """Cell-column counts per processor column."""
        return np.diff(self.xsplits)

    def heights(self) -> np.ndarray:
        """Cell-row counts per processor row."""
        return np.diff(self.ysplits)

    # ------------------------------------------------------------------
    # Boundary moves (load balancing)
    # ------------------------------------------------------------------
    def with_xsplits(self, xsplits) -> "BlockPartition":
        return BlockPartition(self.cells, np.asarray(xsplits), self.ysplits)

    def with_ysplits(self, ysplits) -> "BlockPartition":
        return BlockPartition(self.cells, self.xsplits, np.asarray(ysplits))

    def moved_cells_x(self, new_xsplits) -> int:
        """Mesh cells changing owner when xsplits become ``new_xsplits``.

        Each interior boundary that moves by ``delta`` columns transfers
        ``|delta| * cells`` mesh cells between the adjacent processor
        columns (summed over all Py rows).  Feeds the migration cost model.
        """
        new = np.asarray(new_xsplits, dtype=np.int64)
        if len(new) != len(self.xsplits):
            raise ValueError("split vector length mismatch")
        return int(np.abs(new[1:-1] - self.xsplits[1:-1]).sum()) * self.cells

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BlockPartition)
            and self.cells == other.cells
            and np.array_equal(self.xsplits, other.xsplits)
            and np.array_equal(self.ysplits, other.ysplits)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockPartition({self.px}x{self.py} over {self.cells}^2, "
            f"x={self.xsplits.tolist()}, y={self.ysplits.tolist()})"
        )
