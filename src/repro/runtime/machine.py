"""Hierarchical machine model — the substitute for the paper's Edison testbed.

The paper ran on Edison, a Cray XC30 with two 12-core Intel Xeon E5-2695v2
sockets per node and a Dragonfly (Aries) interconnect.  What its experiments
actually exercise is the *cost hierarchy*: messages between cores of the same
socket are cheapest, cross-socket messages cost more, and inter-node messages
are "orders of magnitude more expensive" than shared memory (§V-B).

:class:`MachineModel` captures exactly that hierarchy: a rank is pinned to a
core (block mapping: consecutive ranks fill a socket, then the next socket,
then the next node), and every pair of cores falls into a :class:`Tier` with
its own latency and bandwidth.  The default parameters are of the order
measured on XC30-class systems; the figures reproduced in ``benchmarks/``
only depend on their relative magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.runtime.errors import RuntimeConfigError


class Tier(IntEnum):
    """Communication distance classes, cheapest first."""

    SELF = 0      # same core (e.g. two VPs co-located by AMPI)
    SOCKET = 1    # same socket, different core
    NODE = 2      # same node, different socket
    NETWORK = 3   # different nodes


@dataclass(frozen=True)
class TierCosts:
    """Latency (seconds) and bandwidth (bytes/second) of one tier."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise RuntimeConfigError(
                f"invalid tier costs: latency={self.latency}, "
                f"bandwidth={self.bandwidth}"
            )

    def transfer_time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class MachineModel:
    """A cluster of identical nodes with a two-level intra-node hierarchy."""

    cores_per_socket: int = 12
    sockets_per_node: int = 2
    tier_costs: dict[Tier, TierCosts] = field(
        default_factory=lambda: {
            # Same-core delivery (co-scheduled VPs): a cache-resident copy.
            Tier.SELF: TierCosts(latency=5e-8, bandwidth=20e9),
            # Shared L3 / memory bus within one socket.
            Tier.SOCKET: TierCosts(latency=3e-7, bandwidth=8e9),
            # QPI hop between sockets of one node.
            Tier.NODE: TierCosts(latency=8e-7, bandwidth=5e9),
            # Aries network between nodes.
            Tier.NETWORK: TierCosts(latency=2.5e-6, bandwidth=2.5e9),
        }
    )
    name: str = "edison-like"

    def __post_init__(self) -> None:
        if self.cores_per_socket <= 0 or self.sockets_per_node <= 0:
            raise RuntimeConfigError("machine geometry must be positive")
        missing = [t for t in Tier if t not in self.tier_costs]
        if missing:
            raise RuntimeConfigError(f"missing tier costs for {missing}")

    # ------------------------------------------------------------------
    @property
    def cores_per_node(self) -> int:
        return self.cores_per_socket * self.sockets_per_node

    def socket_of(self, core: int) -> int:
        """Global socket index of a core (block mapping)."""
        return core // self.cores_per_socket

    def node_of(self, core: int) -> int:
        return core // self.cores_per_node

    def nodes_for_cores(self, n_cores: int) -> int:
        """Number of nodes a job of ``n_cores`` occupies (block allocation)."""
        return -(-n_cores // self.cores_per_node)

    def tier_between(self, core_a: int, core_b: int) -> Tier:
        """Communication tier between two cores."""
        if core_a == core_b:
            return Tier.SELF
        if self.socket_of(core_a) == self.socket_of(core_b):
            return Tier.SOCKET
        if self.node_of(core_a) == self.node_of(core_b):
            return Tier.NODE
        return Tier.NETWORK

    def costs(self, tier: Tier) -> TierCosts:
        return self.tier_costs[tier]

    def transfer_time(self, core_a: int, core_b: int, nbytes: float) -> float:
        """Point-to-point message time between two cores."""
        return self.costs(self.tier_between(core_a, core_b)).transfer_time(nbytes)

    def worst_tier(self, cores) -> Tier:
        """The widest tier spanned by a group of cores (collective pricing)."""
        cores = list(cores)
        if len(cores) <= 1:
            return Tier.SELF
        first = cores[0]
        worst = Tier.SELF
        for c in cores[1:]:
            t = self.tier_between(first, c)
            if t > worst:
                worst = t
                if worst is Tier.NETWORK:
                    break
        return worst


def laptop_model() -> MachineModel:
    """A small shared-memory machine (useful in examples and tests)."""
    return MachineModel(cores_per_socket=4, sockets_per_node=2, name="laptop")


def edison_model() -> MachineModel:
    """The default Edison-like model (2 x 12 cores per node)."""
    return MachineModel()
