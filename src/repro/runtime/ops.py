"""Communication operations yielded by rank programs to the scheduler.

Rank programs never construct these directly — they call methods on
:class:`repro.runtime.comm.Comm` which return the op, and ``yield`` it::

    def program(comm):
        total = yield comm.allreduce(len(local), op=SUM)
        yield comm.send(payload, dst=right, tag=0)
        data = yield comm.recv(src=left, tag=0)
        return total

Sends are *buffered*: they complete locally as soon as the payload is handed
to the transport (like an eager-protocol MPI_Send), so symmetric exchange
patterns cannot deadlock on send.  Receives block until a matching message
exists.
"""

from __future__ import annotations


class SendOp:
    """Buffered point-to-point send."""

    __slots__ = ("comm", "dst", "tag", "payload", "nbytes")

    def __init__(self, comm, dst, tag, payload, nbytes):
        self.comm = comm
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes


class RecvOp:
    """Blocking point-to-point receive (wildcards allowed)."""

    __slots__ = ("comm", "src", "tag", "with_status")

    def __init__(self, comm, src, tag, with_status=False):
        self.comm = comm
        self.src = src
        self.tag = tag
        self.with_status = with_status


class SendrecvOp:
    """Combined send+receive, safe against exchange deadlocks."""

    __slots__ = ("comm", "dst", "sendtag", "payload", "nbytes", "src", "recvtag")

    def __init__(self, comm, payload, dst, sendtag, src, recvtag, nbytes):
        self.comm = comm
        self.payload = payload
        self.dst = dst
        self.sendtag = sendtag
        self.src = src
        self.recvtag = recvtag
        self.nbytes = nbytes


class ComputeOp:
    """Charge local compute time to the rank's (and its core's) clock.

    ``task`` optionally carries the *real* work behind the charge as a data
    descriptor (see :class:`repro.runtime.executor.PushTask`) instead of
    running it inline before the yield.  The scheduler charges the simulated
    clock at dispatch exactly as for a bare compute op, parks the rank, and
    batches all simultaneously-parked tasks to the active executor backend
    — which may fuse them or fan them out across worker processes.
    """

    __slots__ = ("seconds", "task")

    def __init__(self, seconds: float, task=None):
        if seconds < 0:
            raise ValueError("compute time must be non-negative")
        self.seconds = seconds
        self.task = task


class WaitOp:
    """Complete a previously posted nonblocking request.

    Nonblocking sends are buffered (already complete when posted); waiting
    on them is free.  Nonblocking receives are matched lazily: the wait
    performs the actual blocking receive with the criteria recorded at post
    time.  Requests posted on the same (source, tag) pair complete in post
    order, preserving MPI's matching order for the patterns the PIC
    implementations use.
    """

    __slots__ = ("request",)

    def __init__(self, request):
        self.request = request


class CollectiveOp:
    """Any collective over a communicator.

    ``seq`` is the per-communicator collective sequence number; all ranks of
    a communicator execute collectives in the same order, so ``(comm_id,
    seq)`` uniquely identifies one collective instance across ranks.

    ``kind`` selects the built-in completion semantics (barrier, bcast,
    reduce, allreduce, gather, allgather, alltoall, alltoallv, scan, split,
    cart_create) or ``"user"``, in which case ``user_fn(values, ctx)``
    computes the per-rank results (used by the AMPI runtime's migrate()).
    """

    __slots__ = ("comm", "kind", "value", "op", "root", "seq", "user_fn", "nbytes")

    def __init__(self, comm, kind, value=None, op=None, root=0, seq=0, user_fn=None, nbytes=0):
        self.comm = comm
        self.kind = kind
        self.value = value
        self.op = op
        self.root = root
        self.seq = seq
        self.user_fn = user_fn
        self.nbytes = nbytes
