"""Error types raised by the simulated MPI runtime."""

from __future__ import annotations


class DeadlockError(RuntimeError):
    """No rank can make progress: every live rank is blocked.

    Raised by the scheduler when all unfinished ranks are waiting on
    receives or collectives that can never complete — the simulated
    equivalent of a hung MPI job.
    """


class CollectiveMismatchError(RuntimeError):
    """Ranks of one communicator disagree on the collective being executed.

    E.g. one rank calls ``allreduce`` while another calls ``barrier`` as the
    n-th collective on the same communicator — a program bug that real MPI
    would surface as a hang or corruption; we fail fast instead.
    """


class RuntimeConfigError(ValueError):
    """Invalid runtime configuration (rank counts, machine geometry, ...)."""
