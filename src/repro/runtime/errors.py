"""Error types raised by the simulated MPI runtime."""

from __future__ import annotations


class DeadlockError(RuntimeError):
    """No rank can make progress: every live rank is blocked.

    Raised by the scheduler when all unfinished ranks are waiting on
    receives or collectives that can never complete — the simulated
    equivalent of a hung MPI job.
    """


class CollectiveMismatchError(RuntimeError):
    """Ranks of one communicator disagree on the collective being executed.

    E.g. one rank calls ``allreduce`` while another calls ``barrier`` as the
    n-th collective on the same communicator — a program bug that real MPI
    would surface as a hang or corruption; we fail fast instead.
    """


class RuntimeConfigError(ValueError):
    """Invalid runtime configuration (rank counts, machine geometry, ...)."""


class RankFailedError(RuntimeError):
    """A rank hit a fault-plan crash event with no recovery policy in place.

    Carries the failed ``rank`` and the ``step`` at which the crash fired so
    harnesses can report (and tests can assert) exactly which perturbation
    killed the run.  With a recovery policy attached, the same event is
    instead absorbed as simulated restart time (see repro.resilience).
    """

    def __init__(self, rank: int, step: int, detail: str = ""):
        self.rank = rank
        self.step = step
        msg = f"rank {rank} crashed at step {step} (fault plan)"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file failed validation (CRC mismatch, truncation, ...).

    Raised by :meth:`repro.resilience.Snapshot.load` before any state is
    touched, so a damaged checkpoint can never half-restore a run.
    """
