"""Cooperative multiplexer: time-slice many engines in one process.

:class:`EngineGroup` drives N independent :class:`~repro.runtime.engine.SimEngine`
instances by handing each a bounded slice of work (``tick(slice_ticks)``
plus at most one executor flush) before moving to the next.  Because each
engine's virtual time is fully decoupled from wall-clock drive order
(compute is charged at dispatch; see :mod:`repro.runtime.engine`), *any*
interleaving order produces byte-identical per-engine results — the
scheduling policy only shapes latency/fairness across engines, never a
single simulated timestamp.

Two policies:

``fair``
    Round-robin over unfinished engines.  ``order_seed`` shuffles the
    visit order once per round (deterministically, via
    ``random.Random(order_seed)``) — the CI ``multirun-smoke`` job uses
    two different seeds to prove order-independence byte-for-byte.

``deadline``
    Each round advances the engine whose virtual clock is furthest
    behind (smallest ``engine.now``; name breaks ties), approximating
    earliest-virtual-deadline-first so co-scheduled runs of different
    sizes finish in virtual-time order rather than submission order.

One executor pool can be shared across engines: the group wraps it in
per-engine :class:`~repro.runtime.executor.ExecutorHandle` views so every
dispatched batch is tagged with its engine id (``Executor.tag_stats``),
while ``_flush_compute`` park-order semantics stay per-engine — a flush
is atomic inside one engine's slice, so batches from different engines
never interleave inside a flush.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.runtime.engine import ENGINE_FINISHED, SimEngine
from repro.runtime.errors import DeadlockError, RuntimeConfigError
from repro.runtime.executor import Executor, ExecutorHandle

_POLICIES = ("fair", "deadline")


class EngineGroup:
    """Run many :class:`SimEngine` instances cooperatively in one process.

    ``policy``
        ``"fair"`` (round-robin) or ``"deadline"`` (furthest-behind
        virtual clock first).
    ``slice_ticks``
        Rank steps granted per engine per slice; each slice also performs
        at most one executor flush when the engine blocks.
    ``order_seed``
        Fair policy only: per-round deterministic shuffle of the visit
        order.  ``None`` keeps insertion order.
    ``executor``
        Optional shared pool.  The group *owns* it (closes it in
        :meth:`close`); use :meth:`handle` to get tagged per-engine views
        for building the engines' schedulers.
    """

    def __init__(
        self,
        *,
        policy: str = "fair",
        slice_ticks: int = 64,
        order_seed: int | None = None,
        executor: Executor | None = None,
    ):
        if policy not in _POLICIES:
            raise RuntimeConfigError(
                f"unknown multiplex policy {policy!r}; "
                f"choose from {', '.join(_POLICIES)}"
            )
        if slice_ticks <= 0:
            raise RuntimeConfigError("slice_ticks must be positive")
        self.policy = policy
        self.slice_ticks = slice_ticks
        self.order_seed = order_seed
        self.executor = executor
        self._engines: dict[str, SimEngine] = {}
        self._rng = random.Random(order_seed) if order_seed is not None else None
        #: Completed slices, for reporting.
        self.slices = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def handle(self, tag: str) -> ExecutorHandle:
        """A tagged per-engine view of the shared pool.

        Raises if the group was built without a shared executor — in that
        configuration each engine owns its backend.
        """
        if self.executor is None:
            raise RuntimeConfigError(
                "EngineGroup has no shared executor; pass executor= at "
                "construction to hand out per-engine handles"
            )
        return ExecutorHandle(self.executor, tag=tag)

    def add(self, name: str, engine: SimEngine) -> SimEngine:
        """Register an engine under ``name`` (its id within the group)."""
        if name in self._engines:
            raise RuntimeConfigError(f"engine {name!r} already in group")
        self._engines[name] = engine
        return engine

    def __len__(self) -> int:
        return len(self._engines)

    def __iter__(self) -> Iterator[str]:
        return iter(self._engines)

    def engine(self, name: str) -> SimEngine:
        return self._engines[name]

    @property
    def unfinished(self) -> list[str]:
        return [n for n, e in self._engines.items() if not e.finished]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _next_round(self) -> list[str]:
        """Engine names to visit this round, per the policy."""
        pending = self.unfinished
        if not pending:
            return []
        if self.policy == "deadline":
            # Furthest-behind virtual clock first; one engine per round so
            # the deadline ordering re-evaluates after every slice.
            return [min(pending, key=lambda n: (self._engines[n].now, n))]
        if self._rng is not None:
            self._rng.shuffle(pending)
        return pending

    def _slice(self, name: str) -> str:
        """Give one engine one bounded slice of work."""
        eng = self._engines[name]
        try:
            status = eng.tick(self.slice_ticks)
            if status == "blocked-on-executor":
                status = eng.flush()
        except DeadlockError as err:
            if hasattr(err, "add_note"):  # pragma: no branch
                err.add_note(
                    f"while advancing engine {name!r} in an EngineGroup slice"
                )
            raise
        self.slices += 1
        return status

    def step(self) -> bool:
        """Advance one round of slices; False when every engine finished."""
        names = self._next_round()
        if not names:
            return False
        for name in names:
            if not self._engines[name].finished:
                self._slice(name)
        return bool(self.unfinished)

    def run_all(self) -> dict[str, object]:
        """Interleave every engine to completion; results keyed by name.

        Each engine's result is byte-identical to driving it alone with
        ``run()`` — the interleaving order cannot move simulated state.
        """
        if not self._engines:
            raise RuntimeConfigError("EngineGroup has no engines to run")
        while self.step():
            pass
        return {
            name: eng.result()
            for name, eng in self._engines.items()
            if eng.status == ENGINE_FINISHED
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every engine, then the shared pool (if any). Idempotent."""
        for eng in self._engines.values():
            eng.close()
        if self.executor is not None:
            self.executor.close()

    def __enter__(self) -> "EngineGroup":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
