"""Reduction operators for the simulated MPI collectives.

Operators work uniformly on Python scalars and NumPy arrays, combining
pairwise like MPI's predefined operations.  All predefined operators are
associative and commutative, so reduction order does not change results
(up to floating-point round-off, exactly as in real MPI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """A named, binary, elementwise reduction operator."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a, b):
        return self.fn(a, b)

    def reduce(self, values: list) -> Any:
        """Fold a non-empty list of rank contributions."""
        if not values:
            raise ValueError("cannot reduce an empty contribution list")
        acc = values[0]
        for v in values[1:]:
            acc = self.fn(acc, v)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


def _sum(a, b):
    return a + b


def _prod(a, b):
    return a * b


def _max(a, b):
    return np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b)


def _min(a, b):
    return np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b)


def _land(a, b):
    return bool(a) and bool(b)


def _lor(a, b):
    return bool(a) or bool(b)


SUM = ReduceOp("SUM", _sum)
PROD = ReduceOp("PROD", _prod)
MAX = ReduceOp("MAX", _max)
MIN = ReduceOp("MIN", _min)
LAND = ReduceOp("LAND", _land)
LOR = ReduceOp("LOR", _lor)
