"""Communicator API of the simulated MPI runtime.

:class:`Comm` mirrors the subset of the MPI interface the paper's reference
implementations need.  Every communication method *returns an operation
object* that the rank program must ``yield``; the scheduler performs the
operation and resumes the generator with the result::

    def program(comm: Comm):
        if comm.rank == 0:
            yield comm.send("hello", dst=1, tag=7)
        else:
            msg = yield comm.recv(src=0, tag=7)
        n = yield comm.allreduce(1, op=SUM)   # == comm.size
        return n

Non-yielding helpers (``rank``, ``size``, ``wtime``, ``core``) may be called
directly.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.runtime import ops
from repro.runtime.costmodel import payload_nbytes
from repro.runtime.reduce_ops import ReduceOp, SUM
from repro.runtime.request import Request
from repro.runtime.transport import ANY_SOURCE, ANY_TAG

__all__ = ["Comm", "ANY_SOURCE", "ANY_TAG"]


class Comm:
    """One rank's handle on a communicator.

    ``world_ranks[i]`` is the world rank of the communicator's local rank
    ``i``; ``rank`` is this process's local rank.  Instances are created by
    the scheduler (the world communicator) or by collective operations
    (:meth:`split`, :meth:`create_cart`).
    """

    def __init__(self, scheduler, comm_id: int, world_ranks: tuple[int, ...], rank: int):
        self._scheduler = scheduler
        self.comm_id = comm_id
        self.world_ranks = world_ranks
        self.rank = rank
        self._coll_seq = 0

    # ------------------------------------------------------------------
    # Introspection (non-yielding)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    @property
    def world_rank(self) -> int:
        """This process's rank in the world communicator."""
        return self.world_ranks[self.rank]

    def wtime(self) -> float:
        """This rank's virtual clock (the simulated MPI_Wtime)."""
        return self._scheduler.clock[self.world_rank]

    def annotate_step(self, step: int) -> None:
        """Mark the top of time step ``step`` for this rank.

        Non-yielding; drivers call it unconditionally at the top of each
        time step.  Updates the observational tracer stamp and the
        scheduler's per-rank step counter.  Without a resilience hook this
        is free in simulated time; with one, step boundaries are where
        crash events fire and straggler observations are taken (see
        :meth:`repro.runtime.scheduler.Scheduler.notify_step`).
        """
        self._scheduler.notify_step(self.world_rank, step)

    def _count_op(self, name: str) -> None:
        """Bump the per-operation metrics counter (observational only)."""
        metrics = self._scheduler.metrics
        if metrics is not None:
            metrics.counter(f"comm.{name}").inc()

    def core(self) -> int:
        """Physical core this rank currently executes on."""
        return self._scheduler.rank_to_core[self.world_rank]

    def translate_to_world(self, local_rank: int) -> int:
        return self.world_ranks[local_rank]

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self.size):
            raise ValueError(
                f"peer rank {peer} out of range for communicator of size {self.size}"
            )

    def _next_seq(self) -> int:
        seq = self._coll_seq
        self._coll_seq += 1
        return seq

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, dst: int, tag: int = 0, nbytes: int | None = None) -> ops.SendOp:
        """Buffered send of ``payload`` to local rank ``dst``."""
        self._check_peer(dst)
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        self._count_op("send")
        return ops.SendOp(self, dst, tag, payload, nbytes)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, status: bool = False) -> ops.RecvOp:
        """Blocking receive; resumes with the payload.

        With ``status=True`` the program is resumed with ``(payload, src,
        tag)`` instead, like querying an MPI_Status.
        """
        if src != ANY_SOURCE:
            self._check_peer(src)
        return ops.RecvOp(self, src, tag, with_status=status)

    def sendrecv(
        self,
        payload: Any,
        dst: int,
        src: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        nbytes: int | None = None,
    ) -> ops.SendrecvOp:
        """Combined exchange: send to ``dst``, receive from ``src``."""
        self._check_peer(dst)
        if src != ANY_SOURCE:
            self._check_peer(src)
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        self._count_op("sendrecv")
        return ops.SendrecvOp(self, payload, dst, sendtag, src, recvtag, nbytes)

    # ------------------------------------------------------------------
    # Nonblocking point-to-point
    # ------------------------------------------------------------------
    def isend(self, payload: Any, dst: int, tag: int = 0, nbytes: int | None = None):
        """Nonblocking send: returns ``(op, request)``.

        Yield the op (the buffered send completes immediately), keep the
        request for symmetry with MPI code::

            op, req = comm.isend(data, dst=right)
            yield op
            ...
            yield comm.wait(req)     # free: sends are buffered
        """
        req = Request(self, "send", payload=payload)
        return self.send(payload, dst, tag, nbytes=nbytes), req

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Post a nonblocking receive; complete it with :meth:`wait`.

        Matching is lazy: the receive happens when the request is waited
        on, with these criteria.  Requests on one (source, tag) stream
        complete in the order they are waited on.
        """
        if src != ANY_SOURCE:
            self._check_peer(src)
        return Request(self, "recv", src=src, tag=tag)

    def wait(self, request: Request) -> ops.WaitOp:
        """Complete one request; resumes with its payload."""
        if request.comm is not self:
            raise ValueError("request belongs to a different communicator")
        return ops.WaitOp(request)

    def waitall(self, requests: Sequence[Request]):
        """Complete several requests (generator; returns payload list).

        Use as ``results = yield from comm.waitall(reqs)``.
        """
        results = []
        for req in requests:
            results.append((yield self.wait(req)))
        return results

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> ops.CollectiveOp:
        return ops.CollectiveOp(self, "barrier", seq=self._next_seq())

    def bcast(self, value: Any = None, root: int = 0) -> ops.CollectiveOp:
        """Broadcast ``root``'s value to all ranks (others pass anything)."""
        self._check_peer(root)
        return ops.CollectiveOp(
            self, "bcast", value=value, root=root, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> ops.CollectiveOp:
        self._check_peer(root)
        return ops.CollectiveOp(
            self, "reduce", value=value, op=op, root=root, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> ops.CollectiveOp:
        return ops.CollectiveOp(
            self, "allreduce", value=value, op=op, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    def gather(self, value: Any, root: int = 0) -> ops.CollectiveOp:
        """Root resumes with the list of all values (by rank); others None."""
        self._check_peer(root)
        return ops.CollectiveOp(
            self, "gather", value=value, root=root, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    def allgather(self, value: Any) -> ops.CollectiveOp:
        """Every rank resumes with the list of all values (by rank)."""
        return ops.CollectiveOp(
            self, "allgather", value=value, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    def alltoall(self, values: Sequence[Any]) -> ops.CollectiveOp:
        """Rank ``i`` contributes ``values[j]`` for each peer ``j`` and
        resumes with the list of values addressed to it."""
        if len(values) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} values, got {len(values)}"
            )
        return ops.CollectiveOp(
            self, "alltoall", value=list(values), seq=self._next_seq(),
            nbytes=payload_nbytes(values),
        )

    def scan(self, value: Any, op: ReduceOp = SUM) -> ops.CollectiveOp:
        """Inclusive prefix reduction over ranks."""
        return ops.CollectiveOp(
            self, "scan", value=value, op=op, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    def split(self, color: int | None, key: int = 0) -> ops.CollectiveOp:
        """Partition the communicator; resumes with the new Comm (or None).

        Ranks passing the same ``color`` form a new communicator, ordered by
        ``(key, old rank)``.  ``color=None`` opts out (MPI_UNDEFINED).
        """
        return ops.CollectiveOp(
            self, "split", value=(color, key), seq=self._next_seq(), nbytes=16,
        )

    def create_cart(self, dims: tuple[int, int], periodic: bool = True) -> ops.CollectiveOp:
        """Create a 2D Cartesian communicator; resumes with a CartComm.

        ``dims[0] * dims[1]`` must equal the communicator size; ranks keep
        their order (row-major coordinates).
        """
        if dims[0] * dims[1] != self.size:
            raise ValueError(
                f"cartesian dims {dims} do not cover communicator size {self.size}"
            )
        return ops.CollectiveOp(
            self, "cart_create", value=(tuple(dims), bool(periodic)),
            seq=self._next_seq(), nbytes=16,
        )

    def user_collective(self, value: Any, fn: Callable) -> ops.CollectiveOp:
        """Custom collective: ``fn(values, ctx)`` returns per-rank results.

        ``fn`` runs once when every rank has arrived, receiving the list of
        contributed values (by local rank) and a
        :class:`repro.runtime.scheduler.CollectiveContext`.  Only the op
        yielded by local rank 0 supplies ``fn`` (the others may pass the
        same function; it is ignored).  Used by the AMPI runtime's migrate().
        """
        return ops.CollectiveOp(
            self, "user", value=value, user_fn=fn, seq=self._next_seq(),
            nbytes=payload_nbytes(value),
        )

    # ------------------------------------------------------------------
    # Compute accounting
    # ------------------------------------------------------------------
    def compute(self, seconds: float, task=None) -> ops.ComputeOp:
        """Charge ``seconds`` of local computation to this rank's clock.

        With ``task`` (a :class:`repro.runtime.executor.PushTask`) the real
        work is handed to the scheduler's executor backend, which may batch
        it with other ranks' simultaneously runnable compute phases; the
        simulated charge is identical either way.
        """
        return ops.ComputeOp(seconds, task)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Comm(id={self.comm_id}, rank={self.rank}/{self.size}, "
            f"world={self.world_rank})"
        )
