"""In-memory transport with MPI matching semantics.

Each destination (world rank) owns an ordered list of pending messages.
A receive matches the *earliest delivered* pending message whose
communicator, source and tag agree (``ANY_SOURCE``/``ANY_TAG`` wildcards
supported).  Because the pending list is kept in send order, messages
between one (source, tag) pair can never overtake one another — MPI's
non-overtaking guarantee.
"""

from __future__ import annotations

from repro.runtime.message import Message

#: Wildcard constants, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE: int = -1
ANY_TAG: int = -1


class Transport:
    """Mailboxes for ``n`` world ranks."""

    def __init__(self, n_ranks: int, metrics=None):
        if n_ranks <= 0:
            raise ValueError("transport needs at least one rank")
        self.n_ranks = n_ranks
        self._pending: list[list[Message]] = [[] for _ in range(n_ranks)]
        self._seq = 0
        # Traffic statistics (exposed through the scheduler for benchmarks).
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional :class:`repro.instrument.MetricsRegistry`; observational
        #: only — never influences matching or delivery.
        self.metrics = metrics

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def deliver(self, dst_world: int, message: Message) -> None:
        """Queue a message at its destination."""
        self._pending[dst_world].append(message)
        self.messages_sent += 1
        self.bytes_sent += message.nbytes
        if self.metrics is not None:
            self.metrics.counter("transport.messages_sent").inc()
            self.metrics.counter("transport.bytes_sent").inc(message.nbytes)
            self.metrics.gauge("transport.pending_peak").set_max(
                len(self._pending[dst_world])
            )

    def match(self, dst_world: int, comm_id: int, src: int, tag: int) -> Message | None:
        """Pop and return the first matching pending message, if any."""
        pending = self._pending[dst_world]
        for i, msg in enumerate(pending):
            if msg.comm_id != comm_id:
                continue
            if src != ANY_SOURCE and msg.src != src:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            del pending[i]
            return msg
        return None

    def pending_count(self, dst_world: int) -> int:
        return len(self._pending[dst_world])

    def total_pending(self) -> int:
        return sum(len(q) for q in self._pending)

    def describe_pending(self, limit: int = 10) -> str:
        """Human-readable dump of undelivered messages (deadlock reports)."""
        lines = []
        for dst, queue in enumerate(self._pending):
            for msg in queue[:limit]:
                lines.append(f"  dst={dst} <- {msg!r}")
        return "\n".join(lines) if lines else "  (no pending messages)"
