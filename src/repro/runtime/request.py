"""Nonblocking communication requests (MPI_Request analogue).

The simulated runtime buffers sends, so an ``isend`` completes immediately;
an ``irecv`` records its matching criteria and the actual receive happens
when the request is waited on.  This "lazy irecv" preserves semantics for
the common PIC patterns (post all receives, do work, wait all): requests on
one (source, tag) stream complete in posting order because waits execute in
program order.
"""

from __future__ import annotations

from typing import Any


class Request:
    """Handle for a nonblocking operation; complete it by yielding
    ``comm.wait(request)`` (or ``comm.waitall([...])``)."""

    __slots__ = ("comm", "kind", "src", "tag", "payload", "done", "result")

    def __init__(self, comm, kind: str, src: int = -1, tag: int = -1, payload: Any = None):
        self.comm = comm
        self.kind = kind  # "send" or "recv"
        self.src = src
        self.tag = tag
        self.payload = payload
        self.done = kind == "send"  # buffered sends complete at post time
        self.result = payload if kind == "send" else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Request({self.kind}, src={self.src}, tag={self.tag}, done={self.done})"
