"""Re-entrant virtual-time engine core over the SPMD scheduler.

:class:`SimEngine` wraps the scheduler's rank-state / ready-deque /
``_flush_compute`` machinery behind an *incremental* drive API:

* :meth:`SimEngine.tick` advances a bounded number of rank steps and
  returns a status — ``running`` (budget exhausted), ``blocked-on-executor``
  (every runnable rank is parked on a dispatched compute task) or
  ``finished``;
* :meth:`SimEngine.flush` hands the parked batch to the executor — the
  one operation that is *not* budget-divisible, because the wake/sweep
  interleaving inside ``Scheduler._flush_compute`` is exactly what the
  golden traces pin;
* :meth:`SimEngine.run` is the thin drive-to-completion loop every
  historical ``Scheduler.run`` caller now goes through;
* :meth:`SimEngine.pause` rides the existing CRC-validated checkpoint
  containers to a consistent cut (see
  :func:`repro.resilience.checkpoint.pause_engine`), from which
  :func:`repro.resilience.checkpoint.resume_engine` rebuilds a
  bitwise-identical continuation.

Determinism argument: the engine changes only *where control returns to
the caller*, never the order of ``_advance_one`` / ``_flush_compute``
calls between two consecutive scheduler states.  All simulated state
(clocks, transport, collectives) mutates inside those two calls, so a
``run()`` drive, a ``tick()``-stepped drive with any budget sequence, and
any interleaving of engines inside an
:class:`~repro.runtime.multiplex.EngineGroup` produce byte-identical
positions, checksums, simulated clocks and golden traces
(``tests/parallel/test_engine_equivalence.py``).

Virtual time is fully decoupled from wall-clock drive order: compute is
charged at dispatch, so *when* a caller chooses to tick an engine cannot
move a single simulated timestamp.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from repro.runtime.comm import Comm
from repro.runtime.errors import RuntimeConfigError

#: :meth:`SimEngine.tick` statuses.
ENGINE_RUNNING = "running"
ENGINE_BLOCKED = "blocked-on-executor"
ENGINE_FINISHED = "finished"


class SimEngine:
    """Incremental driver of one scheduler's run-to-completion loop.

    Constructing the engine *binds* the scheduler: the rank generators are
    instantiated and the ready deque seeded, exactly as the prologue of the
    historical ``Scheduler.run`` did.  A scheduler can be bound once —
    binding a second engine (or calling ``Scheduler.run`` again) raises
    :class:`RuntimeConfigError`, because clocks, transport counters and
    collective pools are not reusable across runs.

    ``finalize`` (optional) maps the raw
    :class:`~repro.runtime.scheduler.SpmdResult` to the caller's result
    type; :meth:`result` returns its value.  The parallel drivers use it to
    assemble a :class:`~repro.parallel.base.ParallelResult` so an
    :class:`~repro.runtime.multiplex.EngineGroup` can hand back finished
    per-engine results directly.

    ``engine_id`` tags executor batches (``start_batch(..., tag=...)``)
    so a shared pool can account work per engine, and namespaces exported
    traces in multi-engine runs.
    """

    def __init__(
        self,
        scheduler,
        programs: Sequence[Callable[[Comm], Any]],
        *,
        engine_id: str | None = None,
        checkpointer=None,
        finalize: Callable[[Any], Any] | None = None,
    ):
        if getattr(scheduler, "_driven", False):
            raise RuntimeConfigError(
                "scheduler has already been run/bound to an engine; "
                "clocks and transport state are not reusable — construct "
                "a fresh Scheduler per run"
            )
        if len(programs) != scheduler.n_ranks:
            raise RuntimeConfigError(
                f"got {len(programs)} programs for {scheduler.n_ranks} ranks"
            )
        scheduler._driven = True
        scheduler.engine_tag = engine_id
        self.scheduler = scheduler
        self.engine_id = engine_id
        self.checkpointer = checkpointer
        self._finalize = finalize
        #: Total rank steps (``_advance_one`` calls) driven through
        #: :meth:`tick`; flush-internal sweeps are not counted (they are
        #: part of the atomic flush).
        self.ticks = 0
        self._status = ENGINE_RUNNING
        self._spmd = None
        self._final = None
        scheduler._states = []
        for r, prog in enumerate(programs):
            gen = prog(scheduler.make_world(r))
            scheduler._states.append(scheduler._rank_state(gen))
        scheduler._finished = 0
        self._ready: deque = deque(range(scheduler.n_ranks))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        return self._status

    @property
    def finished(self) -> bool:
        return self._status == ENGINE_FINISHED

    @property
    def now(self) -> float:
        """Current virtual time: the maximum rank clock.

        Deadline scheduling in :class:`~repro.runtime.multiplex.EngineGroup`
        keys on this — it is monotone under ticking and identical to the
        ``total_time`` a finished run reports.
        """
        return max(self.scheduler.clock)

    # ------------------------------------------------------------------
    # Drive
    # ------------------------------------------------------------------
    def tick(self, budget: int | None = None) -> str:
        """Advance up to ``budget`` rank steps; return the engine status.

        ``None`` means unbounded: advance until the ready deque drains
        (blocked-on-executor or finished) or a deadlock raises.  The
        sequence of scheduler-state mutations is independent of the budget
        — only the return points differ — which is the whole equivalence
        argument (module docstring).

        A detected stall raises
        :class:`~repro.runtime.errors.DeadlockError` with the same
        blocked-rank diagnosis as a blocking run.
        """
        if self._status == ENGINE_FINISHED:
            return self._status
        sched = self.scheduler
        ready = self._ready
        advance = sched._advance_one
        remaining = -1 if budget is None else budget
        while sched._finished < sched.n_ranks:
            if remaining == 0:
                self._status = ENGINE_RUNNING
                return self._status
            if not ready:
                if sched._pending_exec:
                    self._status = ENGINE_BLOCKED
                    return self._status
                sched._raise_deadlock()
            advance(ready)
            self.ticks += 1
            if remaining > 0:
                remaining -= 1
        self._seal()
        return self._status

    def flush(self) -> str:
        """Run the parked compute batch through the executor (atomic).

        Park-order wake and the one-sweep-per-wake interleaving happen
        inside ``Scheduler._flush_compute`` and are never sliced — a
        budgeted caller pays the whole flush at once, keeping the op order
        identical to a blocking run.  No-op (status unchanged) when
        nothing is parked.
        """
        sched = self.scheduler
        if self._status == ENGINE_FINISHED or not sched._pending_exec:
            return self._status
        sched._flush_compute(self._ready)
        if sched._finished >= sched.n_ranks:
            self._seal()
        else:
            self._status = ENGINE_RUNNING
        return self._status

    def run(self):
        """Drive to completion and return :meth:`result`.

        The tick/flush alternation below performs byte-for-byte the same
        ``_advance_one`` / ``_flush_compute`` call sequence as the
        historical blocking loop.
        """
        while True:
            status = self.tick()
            if status == ENGINE_FINISHED:
                return self.result()
            # tick() only returns early here when blocked on the executor
            # (a deadlock raises inside); flush and keep going.
            self.flush()

    def _seal(self) -> None:
        from repro.runtime.scheduler import SpmdResult

        sched = self.scheduler
        times = list(sched.clock)
        self._spmd = SpmdResult(
            returns=[s.retval for s in sched._states],
            times=times,
            total_time=max(times),
            messages_sent=sched.transport.messages_sent,
            bytes_sent=sched.transport.bytes_sent,
            collectives=sched.collectives_completed,
        )
        self._status = ENGINE_FINISHED

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self):
        """The finished run's result (finalized if a callback was given)."""
        if self._status != ENGINE_FINISHED:
            raise RuntimeConfigError(
                f"engine has not finished (status {self._status!r})"
            )
        if self._finalize is None:
            return self._spmd
        if self._final is None:
            self._final = self._finalize(self._spmd)
        return self._final

    def spmd_result(self):
        """The raw :class:`SpmdResult`, bypassing ``finalize``."""
        if self._status != ENGINE_FINISHED:
            raise RuntimeConfigError(
                f"engine has not finished (status {self._status!r})"
            )
        return self._spmd

    # ------------------------------------------------------------------
    # Pause / resume
    # ------------------------------------------------------------------
    def pause(self, *, force: bool = False) -> str | None:
        """Drive to the next consistent checkpoint cut and stop.

        Requires the engine to have been built with a
        :class:`~repro.resilience.Checkpointer` (the parallel drivers
        thread theirs through ``build_engine``).  Returns the checkpoint
        path, or ``None`` if the run finished before reaching a cut.  See
        :func:`repro.resilience.checkpoint.pause_engine` for the
        ``force`` semantics.
        """
        if self.checkpointer is None:
            raise RuntimeConfigError(
                "pause() needs a checkpointer: build the run with "
                "checkpoint_every > 0 (or attach a Checkpointer) so the "
                "engine has a consistent cut to stop at"
            )
        from repro.resilience.checkpoint import pause_engine

        return pause_engine(self, self.checkpointer, force=force)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release scheduler-owned resources (idempotent).

        Reaps the worker pool of a lazily-acquired default executor after
        an error path; an executor passed in explicitly belongs to its
        caller and is left alone (see ``Scheduler.close``).
        """
        self.scheduler.close()

    def __enter__(self) -> "SimEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
