"""Message representation for the simulated MPI transport."""

from __future__ import annotations


class Message:
    """One in-flight point-to-point message.

    ``src`` is the sender's rank *within the communicator* identified by
    ``comm_id`` (matching is always communicator-scoped, like MPI).
    ``t_avail`` is the simulated time at which the payload is available at
    the receiver; ``seq`` is a global monotonically increasing sequence
    number used to keep matching deterministic and non-overtaking.
    """

    __slots__ = ("comm_id", "src", "tag", "payload", "nbytes", "t_avail", "seq")

    def __init__(self, comm_id, src, tag, payload, nbytes, t_avail, seq):
        self.comm_id = comm_id
        self.src = src
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.t_avail = t_avail
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(comm={self.comm_id}, src={self.src}, tag={self.tag}, "
            f"bytes={self.nbytes}, t={self.t_avail:.3e})"
        )
