"""Deterministic scheduler for simulated SPMD programs.

Rank programs are generators (see :mod:`repro.runtime.comm`).  The scheduler
round-robins over runnable ranks, executing each until it yields an
operation; blocking operations (receives without a matching message,
collectives waiting for stragglers) park the rank until the operation can
complete.  Execution is fully deterministic: identical programs produce
identical message orders, results and simulated times on every run.

Virtual time
------------
Every world rank owns a clock; every physical core owns a busy-until clock.
Compute phases and per-message CPU overheads occupy the core — so several
ranks mapped to one core (AMPI virtual processors) serialize, while waiting
on a message does not hold the core.  Message transfer times and collective
costs come from the :class:`repro.runtime.costmodel.CostModel`.  The maximum
final rank clock is the simulated execution time of the job, the analogue of
the paper's reported wall-clock seconds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.runtime import ops
from repro.runtime.cart import CartComm
from repro.runtime.comm import Comm
from repro.runtime.costmodel import CostModel
from repro.runtime.errors import (
    CollectiveMismatchError,
    DeadlockError,
    RuntimeConfigError,
)
from repro.runtime.machine import MachineModel
from repro.runtime.message import Message
from repro.runtime.reduce_ops import ReduceOp
from repro.runtime.transport import ANY_SOURCE, ANY_TAG, Transport

_RUNNABLE = 0
_BLOCKED_RECV = 1
_BLOCKED_COLL = 2
_DONE = 3
#: Parked on a dispatched compute task awaiting executor flush.
_BLOCKED_EXEC = 4


class _RankState:
    __slots__ = ("gen", "status", "blocked_op", "resume_value", "retval")

    def __init__(self, gen):
        self.gen = gen
        self.status = _RUNNABLE
        self.blocked_op = None
        self.resume_value = None
        self.retval = None


@dataclass
class CollectiveContext:
    """Handle given to user collectives (see ``Comm.user_collective``).

    Allows the AMPI runtime's migrate() to re-map ranks to cores and charge
    migration time without reaching into scheduler internals.
    """

    scheduler: "Scheduler"
    comm: Comm
    #: Extra seconds to add to each local rank's clock after completion.
    extra_time: dict[int, float] = field(default_factory=dict)

    def core_of(self, local_rank: int) -> int:
        return self.scheduler.rank_to_core[self.comm.world_ranks[local_rank]]

    def set_core(self, local_rank: int, core: int) -> None:
        world = self.comm.world_ranks[local_rank]
        tracer = self.scheduler.tracer
        if tracer is not None:
            tracer.instant(
                "migrate",
                "lb",
                world,
                core,
                self.scheduler.clock[world],
                old_core=self.scheduler.rank_to_core[world],
            )
        self.scheduler.rank_to_core[world] = core

    def add_time(self, local_rank: int, seconds: float) -> None:
        self.extra_time[local_rank] = self.extra_time.get(local_rank, 0.0) + seconds

    @property
    def cost(self) -> CostModel:
        return self.scheduler.cost

    @property
    def machine(self) -> MachineModel:
        return self.scheduler.machine

    @property
    def metrics(self):
        return self.scheduler.metrics


@dataclass
class SpmdResult:
    """Outcome of one simulated SPMD run."""

    returns: list
    times: list[float]
    total_time: float
    messages_sent: int
    bytes_sent: int
    collectives: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpmdResult(T={self.total_time:.4f}s, msgs={self.messages_sent}, "
            f"bytes={self.bytes_sent}, colls={self.collectives})"
        )


class Scheduler:
    """Runs a set of rank programs to completion."""

    def __init__(
        self,
        n_ranks: int,
        machine: MachineModel | None = None,
        cost: CostModel | None = None,
        rank_to_core: Sequence[int] | None = None,
        tracer=None,
        metrics=None,
        executor=None,
        resilience=None,
        work_rates=None,
    ):
        if n_ranks <= 0:
            raise RuntimeConfigError("need at least one rank")
        self.n_ranks = n_ranks
        self.machine = machine or MachineModel()
        self.cost = cost or CostModel(machine=self.machine)
        if self.cost.machine is not self.machine:
            # Keep one source of truth for the topology.
            self.cost = CostModel(
                machine=self.machine,
                particle_push_s=self.cost.particle_push_s,
                particle_pack_s=self.cost.particle_pack_s,
                cell_handling_s=self.cost.cell_handling_s,
                message_overhead_s=self.cost.message_overhead_s,
                vp_scheduling_s=self.cost.vp_scheduling_s,
            )
        if rank_to_core is None:
            rank_to_core = list(range(n_ranks))
        else:
            rank_to_core = list(rank_to_core)
            if len(rank_to_core) != n_ranks:
                raise RuntimeConfigError("rank_to_core must have one entry per rank")
        self.rank_to_core = rank_to_core
        # Per-message CPU overheads are constants of the (frozen) cost
        # model; cache them here so the per-message hot path does not pay
        # two method calls for every send/recv pair.
        self._send_overhead_s = self.cost.send_overhead()
        self._recv_overhead_s = self.cost.recv_overhead()
        #: Optional :class:`repro.instrument.Tracer` — receives spans at
        #: every state transition.  Purely observational: emissions are
        #: guarded with ``is not None`` and never touch simulated state.
        self.tracer = tracer
        #: Optional :class:`repro.instrument.MetricsRegistry`, same contract.
        self.metrics = metrics
        #: Optional :class:`repro.resilience.RuntimeResilience` hook bundle.
        #: Unlike tracer/metrics this one is *not* purely observational: an
        #: attached fault plan perturbs simulated time (deterministically).
        self.resilience = resilience
        #: Optional :class:`repro.runtime.costmodel.WorkRateMeter` keyed by
        #: world rank.  When set, each rank's modelled compute charge is
        #: scaled by its measured slowdown relative to the fleet's fastest
        #: rank, so heterogeneous kernel backends surface as real simulated
        #: imbalance.  Applied only to task-carrying compute ops (the
        #: particle push — the phase the meter actually measures), before
        #: any resilience scaling.  ``None`` (the default) leaves every
        #: simulated timestamp untouched.
        self.work_rates = work_rates
        self.transport = Transport(n_ranks, metrics=metrics)
        self.clock = [0.0] * n_ranks
        #: Current step of each rank (-1 before the first annotation),
        #: maintained by :meth:`notify_step` — fault windows and straggler
        #: observations are keyed on it.
        self.step = [-1] * n_ranks
        #: Cumulative seconds each *rank* occupied its core.  Per-rank
        #: busy time is the straggler signal: rank clocks synchronize at
        #: every collective, busy time does not.
        self.rank_busy = [0.0] * n_ranks
        self.core_clock: dict[int, float] = {}
        #: Cumulative seconds each core spent occupied (compute + message
        #: CPU overheads); feeds the core-busy-fraction metric.
        self.core_busy: dict[int, float] = {}
        self._comm_counter = 0
        self._coll_pool: dict[tuple[int, int], dict[int, ops.CollectiveOp]] = {}
        self._states: list[_RankState] = []
        self.collectives_completed = 0
        #: Compute-execution backend (:mod:`repro.runtime.executor`).
        #: ``None`` defers to the process-wide default (REPRO_EXECUTOR env)
        #: at first use, so plain constructions stay env-configurable.
        self._executor = executor
        #: Whether :meth:`close` owns the executor: only an instance this
        #: scheduler acquired itself (the lazy default fallback) is closed;
        #: one passed in belongs to its caller.
        self._executor_defaulted = executor is None
        #: ``(rank, task)`` pairs parked since the last executor flush, in
        #: deterministic park order.
        self._pending_exec: list = []
        #: Set once a :class:`~repro.runtime.engine.SimEngine` binds this
        #: scheduler (directly or via :meth:`run`).  Clocks and transport
        #: counters are not reusable, so a second bind raises.
        self._driven = False
        #: Engine id stamped onto executor batches (``start_batch`` tag)
        #: when this scheduler runs inside a multi-engine group.
        self.engine_tag: str | None = None
        self._finished = 0

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def make_world(self, rank: int) -> Comm:
        """World communicator handle for ``rank`` (comm_id 0)."""
        return Comm(self, 0, tuple(range(self.n_ranks)), rank)

    def next_comm_id(self) -> int:
        self._comm_counter += 1
        return self._comm_counter

    def notify_step(self, rank: int, step: int) -> None:
        """A rank entered ``step`` (called via ``Comm.annotate_step``).

        Updates the tracer's step stamp and the per-rank step counter, and
        gives the resilience hooks their step-boundary callback (straggler
        observation, crash events) — the only path through which a fault
        plan can charge time outside an op dispatch.
        """
        self.step[rank] = step
        if self.tracer is not None:
            self.tracer.set_step(rank, step)
        if self.resilience is not None:
            self.resilience.on_step_boundary(self, rank, step)

    def run(self, programs: Sequence[Callable[[Comm], Any]]) -> SpmdResult:
        """Execute one program per rank until every rank returns.

        Thin drive-to-completion loop over the re-entrant engine core —
        see :class:`repro.runtime.engine.SimEngine` for the incremental
        API (``tick``/``flush``/``pause``).  A scheduler runs once;
        re-entry raises :class:`RuntimeConfigError`.
        """
        # Local import: engine.py imports names from this module.
        from repro.runtime.engine import SimEngine

        return SimEngine(self, programs).run()

    #: Rank-state factory used by the engine when binding programs.
    _rank_state = _RankState

    def close(self) -> None:
        """Release the lazily-acquired executor's workers (idempotent).

        Only an executor this scheduler obtained itself (via the
        ``default_executor()`` fallback) is closed; an instance passed to
        the constructor belongs to its caller.  Closing the process-wide
        default is safe: ``ProcessExecutor.close`` is idempotent and the
        pool restarts lazily on next use.
        """
        if self._executor_defaulted and self._executor is not None:
            self._executor.close()

    def _advance_one(self, ready: deque) -> None:
        """Pop one ready rank and drive it to its next yield point."""
        r = ready.popleft()
        state = self._states[r]
        if state.status != _RUNNABLE:  # pragma: no cover - defensive
            return
        gen = state.gen
        if gen is None or not hasattr(gen, "send"):
            # Program body had no yield: the call already returned a value.
            state.retval = gen
            state.status = _DONE
            self._finished += 1
            return
        try:
            value, state.resume_value = state.resume_value, None
            op = gen.send(value)
        except StopIteration as stop:
            state.retval = stop.value
            state.status = _DONE
            self._finished += 1
            return
        self._dispatch(r, op, ready)

    # ------------------------------------------------------------------
    # Clock helpers
    # ------------------------------------------------------------------
    def _occupy(self, rank: int, seconds: float) -> float:
        """Occupy the rank's core for ``seconds``; returns the end time.

        Zero-duration occupations are free and must not touch the core
        clock: the core-busy model is forward-only (no backfilling of idle
        gaps), so pushing the core clock to a late rank's current time
        would wrongly delay co-located ranks whose work logically fits in
        the earlier idle gap.
        """
        if seconds == 0.0:
            return self.clock[rank]
        core = self.rank_to_core[rank]
        start = max(self.clock[rank], self.core_clock.get(core, 0.0))
        end = start + seconds
        self.clock[rank] = end
        self.core_clock[core] = end
        self.core_busy[core] = self.core_busy.get(core, 0.0) + seconds
        self.rank_busy[rank] += seconds
        return end

    # ------------------------------------------------------------------
    # Deferred compute execution
    # ------------------------------------------------------------------
    def _get_executor(self):
        if self._executor is None:
            from repro.runtime.executor import default_executor

            self._executor = default_executor()
        return self._executor

    def _flush_compute(self, ready: deque) -> None:
        """Run all parked compute tasks, overlapping exchange with compute.

        The batch is handed to the executor in park order via
        ``start_batch``, and ranks are woken strictly one at a time in
        that same park order as their tasks complete; after each wake the
        current ready set gets one round-robin sweep (each ready rank
        advances one op).  The sweep is the overlap: a woken rank packs
        and routes its ownership-exchange messages (pure parent-side
        work) while later tasks of the same batch are still running on
        the workers.  One sweep per wake — rather than draining to
        quiescence — keeps the op interleaving close to the scheduler's
        round-robin concurrency model, which the simulated shared-core
        occupation order is sensitive to.  The policy is uniform across
        executors: eager backends return an already-completed handle
        whose ``wait`` is a no-op, so the interleaving is identical
        whether or not anything actually overlapped, and simulated clocks
        were already charged at dispatch — wall-clock completion order
        can never leak into simulated time.
        """
        batch, self._pending_exec = self._pending_exec, []
        handle = self._get_executor().start_batch(batch, tag=self.engine_tag)
        states = self._states
        for i, (r, _task) in enumerate(batch):
            handle.wait(i)
            states[r].status = _RUNNABLE
            ready.append(r)
            for _ in range(len(ready)):
                self._advance_one(ready)
        handle.finish()

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, r: int, op, ready: deque) -> None:
        if type(op) is ops.ComputeOp:
            # The simulated charge happens *now*, at dispatch, whether or
            # not the real work is deferred — so batching tasks to an
            # executor cannot move a single simulated timestamp.  An active
            # fault plan scales the charge (slowdown faults) here, at the
            # single point every compute phase passes through.
            seconds = op.seconds
            if (
                self.work_rates is not None
                and op.task is not None
                and seconds > 0.0
            ):
                seconds = self.work_rates.scale_compute(r, seconds)
            if self.resilience is not None and seconds > 0.0:
                seconds = self.resilience.scale_compute(self, r, seconds)
            end = self._occupy(r, seconds)
            if self.tracer is not None and seconds > 0.0:
                self.tracer.record(
                    "compute", "compute", r, self.rank_to_core[r],
                    end - seconds, end,
                )
            if op.task is None:
                ready.append(r)
            else:
                self._states[r].status = _BLOCKED_EXEC
                self._pending_exec.append((r, op.task))
        elif type(op) is ops.SendOp:
            self._do_send(r, op.comm, op.dst, op.tag, op.payload, op.nbytes, ready)
            ready.append(r)
        elif type(op) is ops.RecvOp:
            self._try_recv(r, op, ready)
        elif type(op) is ops.SendrecvOp:
            self._do_send(r, op.comm, op.dst, op.sendtag, op.payload, op.nbytes, ready)
            recv = ops.RecvOp(op.comm, op.src, op.recvtag)
            self._try_recv(r, recv, ready)
        elif type(op) is ops.WaitOp:
            req = op.request
            if req.done:
                self._states[r].resume_value = req.result
                ready.append(r)
            else:
                # Lazy irecv: the wait performs the blocking receive.
                recv = ops.RecvOp(req.comm, req.src, req.tag)
                req.done = True
                self._try_recv(r, recv, ready)
        elif type(op) is ops.CollectiveOp:
            self._join_collective(r, op, ready)
        else:
            raise TypeError(
                f"rank {r} yielded {op!r}, which is not a runtime operation"
            )

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def _do_send(self, r: int, comm: Comm, dst: int, tag, payload, nbytes, ready: deque) -> None:
        dst_world = comm.world_ranks[dst]
        overhead = self._send_overhead_s
        end = self._occupy(r, overhead)
        if self.tracer is not None and overhead > 0.0:
            self.tracer.record(
                "send", "comm", r, self.rank_to_core[r], end - overhead, end,
                dst=dst_world, tag=tag, nbytes=nbytes,
            )
        wire = self.cost.message_time(
            self.rank_to_core[r], self.rank_to_core[dst_world], nbytes
        )
        if self.resilience is not None:
            # Transient delay/drop-with-retry faults lengthen the wire time
            # of matching messages; payloads are never lost.
            wire += self.resilience.message_penalty(self, r, dst_world, nbytes)
        msg = Message(
            comm_id=comm.comm_id,
            src=comm.rank,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            t_avail=end + wire,
            seq=self.transport.next_seq(),
        )
        self.transport.deliver(dst_world, msg)
        # A rank parked on a matching receive can now continue.
        dst_state = self._states[dst_world]
        if dst_state.status == _BLOCKED_RECV:
            pending = dst_state.blocked_op
            matched = self.transport.match(
                dst_world, pending.comm.comm_id, pending.src, pending.tag
            )
            if matched is not None:
                self._complete_recv(dst_world, pending, matched)
                dst_state.status = _RUNNABLE
                dst_state.blocked_op = None
                ready.append(dst_world)

    def _try_recv(self, r: int, op: ops.RecvOp, ready: deque) -> None:
        msg = self.transport.match(r, op.comm.comm_id, op.src, op.tag)
        if msg is None:
            state = self._states[r]
            state.status = _BLOCKED_RECV
            state.blocked_op = op
            return
        self._complete_recv(r, op, msg)
        ready.append(r)

    def _complete_recv(self, r: int, op: ops.RecvOp, msg: Message) -> None:
        wait_until = max(self.clock[r], msg.t_avail)
        if self.tracer is not None and wait_until > self.clock[r]:
            # Blocked-on-message interval: from when the rank posted the
            # receive (its clock froze there) until the message arrived.
            self.tracer.record(
                "recv_wait", "wait", r, self.rank_to_core[r],
                self.clock[r], wait_until,
                src=msg.src, tag=msg.tag,
            )
        self.clock[r] = wait_until
        overhead = self._recv_overhead_s
        end = self._occupy(r, overhead)
        if self.tracer is not None and overhead > 0.0:
            self.tracer.record(
                "recv", "comm", r, self.rank_to_core[r], end - overhead, end,
                src=msg.src, tag=msg.tag, nbytes=msg.nbytes,
            )
        state = self._states[r]
        if op.with_status:
            state.resume_value = (msg.payload, msg.src, msg.tag)
        else:
            state.resume_value = msg.payload

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def _join_collective(self, r: int, op: ops.CollectiveOp, ready: deque) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"comm.coll.{op.kind}").inc()
        key = (op.comm.comm_id, op.seq)
        pool = self._coll_pool.setdefault(key, {})
        local = op.comm.rank
        if local in pool:  # pragma: no cover - defensive
            raise CollectiveMismatchError(
                f"rank {r} joined collective {key} twice"
            )
        if pool:
            first_kind = next(iter(pool.values())).kind
            if op.kind != first_kind:
                raise CollectiveMismatchError(
                    f"collective #{op.seq} on comm {op.comm.comm_id} mixes "
                    f"kinds {{{first_kind!r}, {op.kind!r}}}"
                )
        pool[local] = op
        state = self._states[r]
        if len(pool) < op.comm.size:
            state.status = _BLOCKED_COLL
            state.blocked_op = op
            return
        # Last arrival completes the collective on behalf of everyone.
        del self._coll_pool[key]
        self._finish_collective(op.comm, pool, ready)

    def _finish_collective(self, comm_sample: Comm, pool: dict[int, ops.CollectiveOp], ready: deque) -> None:
        self.collectives_completed += 1
        size = comm_sample.size
        world_ranks = comm_sample.world_ranks
        op0 = pool[0]
        kind = op0.kind
        values = [pool[i].value for i in range(size)]
        nbytes = max(pool[i].nbytes for i in range(size))
        cores = [self.rank_to_core[w] for w in world_ranks]
        if self.metrics is not None:
            self.metrics.counter("runtime.collectives_completed").inc()

        t_arrive = max(self.clock[w] for w in world_ranks)
        if self.tracer is not None:
            # Early arrivals idled from their own clock until the straggler.
            for w in world_ranks:
                if self.clock[w] < t_arrive:
                    self.tracer.record(
                        f"wait:{kind}", "wait", w, self.rank_to_core[w],
                        self.clock[w], t_arrive,
                    )
        extra: dict[int, float] = {}

        if kind == "user":
            fn = op0.user_fn
            if fn is None:
                raise CollectiveMismatchError("user collective without a function")
            ctx = CollectiveContext(self, pool[0].comm)
            results = fn(values, ctx)
            if len(results) != size:
                raise CollectiveMismatchError(
                    f"user collective returned {len(results)} results for {size} ranks"
                )
            extra = ctx.extra_time
        else:
            results = self._builtin_collective(kind, pool, values, size)

        t_done = t_arrive + self.cost.collective_time(kind, cores, nbytes)
        for i, w in enumerate(world_ranks):
            end_w = t_done + extra.get(i, 0.0)
            if self.tracer is not None and end_w > t_arrive:
                self.tracer.record(
                    f"coll:{kind}", "collective", w, self.rank_to_core[w],
                    t_arrive, end_w, nbytes=nbytes,
                )
            self.clock[w] = end_w
            st = self._states[w]
            st.resume_value = results[i]
            if st.status == _BLOCKED_COLL:
                st.status = _RUNNABLE
                st.blocked_op = None
            ready.append(w)

    def _builtin_collective(self, kind, pool, values, size):
        if kind == "barrier":
            return [None] * size
        if kind == "bcast":
            root_value = values[pool[0].root]
            return [root_value] * size
        if kind == "reduce":
            folded = _fold(pool[0].op, values)
            root = pool[0].root
            return [folded if i == root else None for i in range(size)]
        if kind == "allreduce":
            folded = _fold(pool[0].op, values)
            return [folded] * size
        if kind == "gather":
            root = pool[0].root
            return [list(values) if i == root else None for i in range(size)]
        if kind == "allgather":
            return [list(values) for _ in range(size)]
        if kind == "alltoall":
            return [[values[j][i] for j in range(size)] for i in range(size)]
        if kind == "scan":
            op = pool[0].op
            out = []
            acc = None
            for i, v in enumerate(values):
                acc = v if i == 0 else op(acc, v)
                out.append(acc)
            return out
        if kind == "split":
            return self._do_split(pool, values, size)
        if kind == "cart_create":
            return self._do_cart_create(pool, values, size)
        raise CollectiveMismatchError(f"unknown collective kind {kind!r}")

    def _do_split(self, pool, values, size):
        comm = pool[0].comm
        groups: dict[int, list[tuple[int, int]]] = {}
        for local, (color, key) in enumerate(values):
            if color is None:
                continue
            groups.setdefault(color, []).append((key, local))
        results: list = [None] * size
        for color in sorted(groups):
            members = sorted(groups[color])  # by (key, old rank)
            new_world = tuple(comm.world_ranks[local] for _, local in members)
            new_id = self.next_comm_id()
            for new_rank, (_, local) in enumerate(members):
                results[local] = Comm(self, new_id, new_world, new_rank)
        return results

    def _do_cart_create(self, pool, values, size):
        comm = pool[0].comm
        dims, periodic = values[0]
        if any(v != (dims, periodic) for v in values):
            raise CollectiveMismatchError("ranks disagree on cartesian dims")
        new_id = self.next_comm_id()
        world = tuple(comm.world_ranks)
        return [
            CartComm(self, new_id, world, i, dims, periodic) for i in range(size)
        ]

    # ------------------------------------------------------------------
    def _raise_deadlock(self) -> None:
        blocked_ranks: list[int] = []
        lines = []
        for r, st in enumerate(self._states):
            if st.status == _BLOCKED_RECV:
                op = st.blocked_op
                blocked_ranks.append(r)
                lines.append(
                    f"  rank {r}: parked on recv(src={op.src}, tag={op.tag}, "
                    f"comm={op.comm.comm_id})"
                )
            elif st.status == _BLOCKED_COLL:
                op = st.blocked_op
                blocked_ranks.append(r)
                lines.append(
                    f"  rank {r}: parked on collective {op.kind} #{op.seq} "
                    f"on comm {op.comm.comm_id}"
                )
            elif st.status == _BLOCKED_EXEC:
                blocked_ranks.append(r)
                lines.append(f"  rank {r}: parked on a dispatched compute task")
        detail = "\n".join(lines) if lines else "  (no blocked ranks?)"
        ranks = ", ".join(str(r) for r in blocked_ranks) or "none"
        err = DeadlockError(
            f"no rank can make progress; blocked ranks: [{ranks}]\n"
            + detail
            + "\npending messages:\n"
            + self.transport.describe_pending()
        )
        err.blocked_ranks = blocked_ranks
        raise err


def _fold(op: ReduceOp, values: list):
    if op is None:
        raise CollectiveMismatchError("reduction collective without an operator")
    return op.reduce(values)


def run_spmd(
    n_ranks: int,
    program: Callable[[Comm], Any] | Sequence[Callable[[Comm], Any]],
    *,
    machine: MachineModel | None = None,
    cost: CostModel | None = None,
    rank_to_core: Sequence[int] | None = None,
    tracer=None,
    metrics=None,
    executor=None,
    resilience=None,
    work_rates=None,
) -> SpmdResult:
    """Convenience wrapper: run one program (or one per rank) on ``n_ranks``.

    ``program`` is either a single callable used by every rank or a sequence
    of per-rank callables.
    """
    sched = Scheduler(
        n_ranks,
        machine=machine,
        cost=cost,
        rank_to_core=rank_to_core,
        tracer=tracer,
        metrics=metrics,
        executor=executor,
        resilience=resilience,
        work_rates=work_rates,
    )
    if callable(program):
        programs = [program] * n_ranks
    else:
        programs = list(program)
    try:
        return sched.run(programs)
    except BaseException:
        # Error paths (deadlock, rank failure) must not leak the worker
        # pool of a lazily-created default executor.
        sched.close()
        raise
