"""Cost model: converts work and communication into simulated seconds.

The PIC PRK's performance behaviour (paper §V) is governed by a handful of
rates:

* particle push time — compute per step is linear in the local particle
  count (this is the property Eqs. 7-8 build the imbalance analysis on);
* per-particle pack/unpack time when particles are communicated;
* per-cell handling time when subgrids are migrated during load balancing;
* message latency/bandwidth per machine tier (see
  :mod:`repro.runtime.machine`);
* collective costs, modelled as log2(P) latency-bound stages at the widest
  tier the communicator spans.

The default ``particle_push_s`` is calibrated so that the paper's serial
baseline (600 k particles x 6,000 steps ≈ 500 s, backed out of the 179x
speedup at 384 cores in §V-B) is matched by the model at full scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.runtime.machine import MachineModel, Tier


@dataclass(frozen=True)
class CostModel:
    """Simulated-time cost model bound to a machine model."""

    machine: MachineModel = field(default_factory=MachineModel)
    #: Seconds to push one particle one step (force + integration).
    particle_push_s: float = 1.4e-7
    #: Seconds per particle to pack/unpack for communication.
    particle_pack_s: float = 1.5e-8
    #: Seconds per mesh cell to pack/apply when a subgrid changes owner.
    cell_handling_s: float = 4.0e-9
    #: Fixed software overhead per point-to-point message (send+recv sides
    #: combined): matching, progress engine, buffer management.  Paid per
    #: message regardless of size, so an over-decomposed run pays it ``d``
    #: times more often per core — one of AMPI's intrinsic costs.
    message_overhead_s: float = 2.0e-6
    #: Per-step scheduling overhead of one virtual processor (AMPI): user-level
    #: context switch plus message-queue handling.
    vp_scheduling_s: float = 3.0e-6
    #: Byte-volume multipliers for scaled-down workloads (see
    #: repro.bench.workloads): a particle buffer of n bytes is priced as
    #: ``n * particle_byte_scale`` on the wire, and a subgrid of c cells as
    #: ``c * cell_byte_scale`` cells.  Both default to 1 (true sizes).
    particle_byte_scale: float = 1.0
    cell_byte_scale: float = 1.0
    #: Effective serialize/deserialize rate of VP migration (bytes/s).  Far
    #: below raw link bandwidth: PUP packing, allocation, thread and
    #: communicator rebuild.  Backed out of the paper's Fig. 5, whose
    #: F-sweep implies an MPI_Migrate invocation cost of order 10^-1 s
    #: for ~MB-sized VPs (see EXPERIMENTS.md).
    pup_bandwidth: float = 2.0e8

    def __post_init__(self) -> None:
        for name in (
            "particle_push_s",
            "particle_pack_s",
            "cell_handling_s",
            "message_overhead_s",
            "vp_scheduling_s",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.particle_byte_scale <= 0 or self.cell_byte_scale <= 0:
            raise ValueError("byte scales must be positive")

    # ------------------------------------------------------------------
    # Scaled byte volumes
    # ------------------------------------------------------------------
    def particle_wire_bytes(self, nbytes: int) -> int:
        """Wire bytes charged for a particle payload of true size nbytes."""
        return int(nbytes * self.particle_byte_scale)

    def subgrid_wire_bytes(self, n_cells: int, bytes_per_cell: int = 8) -> int:
        """Wire bytes charged for migrating ``n_cells`` of stored mesh."""
        return int(n_cells * self.cell_byte_scale) * bytes_per_cell

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def push_time(self, n_particles: int) -> float:
        """Compute time to push ``n_particles`` one step."""
        return n_particles * self.particle_push_s

    def pack_time(self, n_particles: int) -> float:
        """Marshalling time for ``n_particles`` entering/leaving a message."""
        return n_particles * self.particle_pack_s

    def subgrid_time(self, n_cells: int) -> float:
        """Handling time for ``n_cells`` of mesh changing owner."""
        return n_cells * self.cell_handling_s

    def subgrid_migration_time(self, n_cells: int) -> float:
        """Handling time for a migrated subgrid, in scaled (paper) cells."""
        return n_cells * self.cell_byte_scale * self.cell_handling_s

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def message_time(self, src_core: int, dst_core: int, nbytes: float) -> float:
        """Wire time of one message between two cores."""
        return self.machine.transfer_time(src_core, dst_core, nbytes)

    def send_overhead(self) -> float:
        """CPU time spent by the sender initiating a message."""
        return 0.5 * self.message_overhead_s

    def recv_overhead(self) -> float:
        """CPU time spent by the receiver completing a message."""
        return 0.5 * self.message_overhead_s

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def collective_time(self, kind: str, cores, nbytes: float) -> float:
        """Cost of one collective over the given participant cores.

        Modelled as ``ceil(log2 P)`` stages of the widest tier's latency plus
        a bandwidth term on the moved payload.  ``kind`` scales the payload
        factor: rooted collectives move the data once, all-to-all moves it
        across all pairs.
        """
        cores = list(cores)
        p = len(cores)
        if p <= 1:
            return 0.0
        tier = self.machine.worst_tier(cores)
        costs = self.machine.costs(tier)
        stages = max(1, math.ceil(math.log2(p)))
        factor = {
            "barrier": 0.0,
            "bcast": 1.0,
            "reduce": 1.0,
            "allreduce": 2.0,
            "gather": 1.0,
            "allgather": 2.0,
            "alltoall": float(p),
            "scan": 1.0,
            "split": 1.0,
        }.get(kind, 1.0)
        return stages * costs.latency + factor * nbytes / costs.bandwidth


#: Nominal push rates (particles/sec) per kernel backend.  Order-of-
#: magnitude priors, not measurements: python is the numpy fused kernel on
#: one core, compiled the scalar numba kernel (the >=3x wallclock gate,
#: with headroom), compiled-parallel the prange kernel on a ~4-core host
#: (the >=2.5x-over-compiled gate).  They exist so a heterogeneous fleet
#: can seed a :class:`WorkRateMeter` *before* the first measured batch —
#: giving the straggler watch and the load balancers a sane relative-speed
#: prior — and are overwritten by real measurements as soon as the
#: executor records them (EWMA, alpha=0.5).
NOMINAL_BACKEND_RATES = {
    "python": 2.0e7,
    "compiled": 1.0e8,
    "compiled-parallel": 2.5e8,
}


def nominal_backend_rate(backend: str) -> float:
    """The nominal pushes/sec prior for a concrete kernel backend name."""
    try:
        return NOMINAL_BACKEND_RATES[backend]
    except KeyError:
        raise ValueError(
            f"no nominal rate for kernel backend {backend!r}; "
            f"known: {', '.join(sorted(NOMINAL_BACKEND_RATES))}"
        ) from None


def predicted_point_pushes(n_particles: int, steps: int) -> int:
    """Predicted kernel pushes one sweep point executes (particles x steps).

    The campaign fabric orders pending points by this prediction (scaled
    through :func:`predicted_point_seconds`) so the longest-expected points
    start first and the sweep tail does not serialize behind a straggler —
    the longest-processing-time-first heuristic, seeded from the model
    rather than from measurements the first run does not have yet.
    """
    if n_particles < 0 or steps < 0:
        raise ValueError("n_particles and steps must be non-negative")
    return int(n_particles) * int(steps)


def predicted_point_seconds(pushes: int, backend: str = "python") -> float:
    """Predicted wall seconds for ``pushes`` on ``backend``'s nominal rate.

    An *ordering prior*, not a forecast: absolute values are wrong on any
    given host, but the ratios between points (the only thing a
    longest-first scheduler consumes) track particle counts, step counts
    and the relative backend speeds of :data:`NOMINAL_BACKEND_RATES`.
    """
    return pushes / nominal_backend_rate(backend)


class WorkRateMeter:
    """Measured per-rank work rates (pushes/sec), EWMA-smoothed.

    The frozen :class:`CostModel` above prices every rank's push at the
    same ``particle_push_s`` — correct for a homogeneous fleet, wrong the
    moment ranks run different kernel backends (compiled vs python differ
    by ~an order of magnitude).  This meter closes the loop: executors
    feed it *measured* wall-clock ``(particles, seconds)`` samples per
    rank (the same measurements that become ``task`` ExecSpans), and the
    scheduler can scale a rank's modelled compute seconds by how much
    slower than the fleet's fastest rank it has proven to be.  The
    scaled seconds then flow through ``rank_busy`` into the
    :class:`~repro.resilience.StragglerWatch` and the load balancers —
    a mixed compiled/python fleet becomes an ordinary, LB-correctable
    imbalance, exactly like a :class:`~repro.resilience.SlowdownFault`.

    Keys are plain ints (world ranks in the executors; anything the
    caller likes elsewhere).  A key without samples scales by 1.0, so an
    unfed meter is invisible — golden traces only change when
    measurements (or seeded rates) say they should.
    """

    def __init__(self, alpha: float = 0.5, reference_rate: float | None = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if reference_rate is not None and reference_rate <= 0.0:
            raise ValueError("reference_rate must be positive")
        self.alpha = float(alpha)
        self.reference_rate = reference_rate
        self._rates: dict[int, float] = {}
        self.samples = 0

    def record(self, key: int, particles: int, seconds: float) -> None:
        """Fold one measured sample (``particles`` pushed in ``seconds``)."""
        if particles <= 0 or seconds <= 0.0:
            return
        rate = particles / seconds
        prev = self._rates.get(key)
        if prev is None:
            self._rates[key] = rate
        else:
            self._rates[key] = self.alpha * rate + (1.0 - self.alpha) * prev
        self.samples += 1

    def seed(self, rates: dict) -> None:
        """Install known rates directly (tests, resumed runs)."""
        for key, rate in rates.items():
            if rate <= 0.0:
                raise ValueError(f"rate for key {key} must be positive")
            self._rates[int(key)] = float(rate)

    def seed_backends(self, backends: dict) -> None:
        """Seed nominal rates from a rank -> kernel-backend-name mapping.

        Gives a mixed-backend fleet a relative-speed prior (see
        :data:`NOMINAL_BACKEND_RATES`) before the first measured batch;
        real executor measurements then take over sample by sample.
        """
        self.seed(
            {rank: nominal_backend_rate(b) for rank, b in backends.items()}
        )

    def rate(self, key: int) -> float | None:
        """Smoothed pushes/sec for ``key``, or None if never measured."""
        return self._rates.get(key)

    def rates(self) -> dict[int, float]:
        """All measured rates, keyed as recorded."""
        return dict(self._rates)

    def _reference(self) -> float | None:
        if self.reference_rate is not None:
            return self.reference_rate
        if not self._rates:
            return None
        return max(self._rates.values())

    def slowdown(self, key: int) -> float:
        """How much slower ``key`` is than the reference rate (>= 1.0 when
        the reference is the fleet maximum); 1.0 when unmeasured."""
        rate = self._rates.get(key)
        ref = self._reference()
        if rate is None or ref is None:
            return 1.0
        return ref / rate

    def scale_compute(self, key: int, seconds: float) -> float:
        """Scale modelled compute seconds by the measured slowdown."""
        return seconds * self.slowdown(key)


def payload_nbytes(value) -> int:
    """Best-effort byte size of a message payload.

    NumPy arrays report their buffer size; containers are summed
    element-wise; scalars count as 8 bytes.  This feeds the bandwidth term of
    the cost model — approximate sizes are fine, but systematically ignoring
    a large particle buffer would distort the figures, so arrays must be
    exact.
    """
    import numpy as np

    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (tuple, list)):
        return sum(payload_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(payload_nbytes(v) for v in value.values())
    return 8
