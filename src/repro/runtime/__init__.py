"""Simulated MPI runtime.

A deterministic message-passing runtime in which SPMD rank programs are
Python *generators* that yield communication operations to a scheduler
(:mod:`repro.runtime.scheduler`).  The API (:mod:`repro.runtime.comm`)
mirrors the mpi4py/MPI surface the paper's reference implementations use:
point-to-point send/recv (with wildcards and non-overtaking order),
collectives (barrier, bcast, reduce, allreduce, gather(v), alltoall(v),
scan, split) and Cartesian topologies.

Each rank carries a virtual clock.  Compute phases charge time through a
cost model (:mod:`repro.runtime.costmodel`) and messages/collectives advance
clocks according to a hierarchical machine model
(:mod:`repro.runtime.machine`), so a completed run yields a *simulated*
execution time comparable across implementations — the substitute for the
paper's wall-clock measurements on Edison (see DESIGN.md §2).
"""

from repro.runtime.comm import ANY_SOURCE, ANY_TAG, Comm
from repro.runtime.cart import CartComm
from repro.runtime.errors import CollectiveMismatchError, DeadlockError, RuntimeConfigError
from repro.runtime.machine import MachineModel, Tier
from repro.runtime.costmodel import CostModel
from repro.runtime.reduce_ops import MAX, MIN, PROD, SUM
from repro.runtime.scheduler import Scheduler, SpmdResult, run_spmd
from repro.runtime.engine import (
    ENGINE_BLOCKED,
    ENGINE_FINISHED,
    ENGINE_RUNNING,
    SimEngine,
)
from repro.runtime.multiplex import EngineGroup

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CartComm",
    "CollectiveMismatchError",
    "DeadlockError",
    "RuntimeConfigError",
    "MachineModel",
    "Tier",
    "CostModel",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "Scheduler",
    "SpmdResult",
    "run_spmd",
    "SimEngine",
    "EngineGroup",
    "ENGINE_RUNNING",
    "ENGINE_BLOCKED",
    "ENGINE_FINISHED",
]
