"""Pluggable compute-execution backends for the scheduler's compute op.

The deterministic scheduler interleaves every simulated rank in one Python
process, so an N-rank run historically used exactly one host core no matter
how many the machine has.  This module turns the per-step particle push —
the only data-parallel, cross-rank-independent phase of the PIC loop — into
*dispatchable work*: rank programs attach a :class:`PushTask` descriptor to
their compute op instead of running the kernel inline, the scheduler
collects every simultaneously runnable task into a batch (see
``Scheduler._flush_compute``), and an :class:`Executor` runs the batch.

Three backends, all bitwise-identical in results, simulated times and
golden traces (``tests/parallel/test_executor_determinism.py``):

``serial``
    The reference: runs each task in park order, exactly the work the rank
    would have done inline.

``batched``
    Stacks all runnable ranks' particle slices into one staging buffer and
    drives a single fused :func:`repro.core.kernel.advance_arrays` call over
    the concatenation.  The kernel is elementwise, so concatenation changes
    chunk boundaries but not a single result bit; what it does change is the
    number of numpy ufunc dispatches — ~50 per *batch* instead of ~50 per
    *rank* — which is where many-small-rank configs (the AMPI VP sweeps)
    spend their wall clock.

``process``
    A persistent ``multiprocessing`` worker pool operating on
    ``multiprocessing.shared_memory`` views of the pooled
    :class:`~repro.core.particles.ParticleArray` backing stores.  The parent
    rebases each rank's backing store into a shared-memory arena once
    (:meth:`ParticleArray.rebase_backing`); after that a steady-state step
    publishes only packed integer/float task records into per-worker
    shared-memory *task rings* (``dispatch="ring"``, the default — see the
    ring section below; ``dispatch="pipe"`` keeps the original pickled
    descriptor path as the measured baseline).  Zero particle bytes cross
    the pipe in either direction.  Workers mutate the shared pages in
    place; the completion barrier is deterministic, so the merge is too.
    Results are bitwise identical to serial because each worker runs the
    very same kernel on the very same bytes, and tasks never overlap.

Determinism argument, in one place: the scheduler charges simulated clocks
when the compute op is *dispatched* (unchanged from the inline days), tasks
touch only rank-local particle arrays, and every backend leaves each task's
arrays bitwise equal to a serial in-order execution.  Nothing downstream —
exchange routing, message sizes, collectives, verification — can observe
which backend ran.

Shared-memory lifecycle (see docs/performance.md): the arena is a grow-only
pool of segments with bump allocation; a segment set is recycled wholesale
when every array previously handed out has been garbage collected (between
runs, in practice).  The executor unlinks all segments on :meth:`close`,
and the process-wide default executor registers an ``atexit`` hook.
"""

from __future__ import annotations

import atexit
import os
import select
import struct
import time
import weakref
from typing import Any

import numpy as np

from repro.core import kernel, kernel_compiled
from repro.core.kernel import KernelWorkspace, advance_arrays
from repro.core.kernel_compiled import (
    advance_arrays_compiled,
    advance_arrays_parallel,
)
from repro.core.mesh import Mesh

__all__ = [
    "PushTask",
    "Executor",
    "ExecutorHandle",
    "BatchHandle",
    "SerialExecutor",
    "BatchedExecutor",
    "ProcessExecutor",
    "ShmArena",
    "make_executor",
    "default_executor",
]

#: Shared-memory offsets are aligned to cache lines.
_ALIGN = 64

#: Unlinked segments whose mappings could not be closed yet because caller
#: views were still alive (see :meth:`ShmArena.close`).
_ZOMBIE_SEGMENTS: list = []


class PushTask:
    """Descriptor of one rank's particle push: the work behind a compute op.

    Carries the *data* of the closure the rank used to run inline
    (mesh, particle container, dt) rather than opaque Python state, so
    executors can fuse tasks or ship them to workers.  ``run()`` is the
    serial reference semantics.
    """

    __slots__ = ("mesh", "particles", "dt")

    def __init__(self, mesh: Mesh, particles, dt: float):
        self.mesh = mesh
        self.particles = particles
        self.dt = dt

    def run(self, workspace: KernelWorkspace | None = None) -> None:
        # Dynamic module-attribute call so perf-harness patches of
        # ``kernel.advance`` (use_legacy_kernel) apply to dispatched tasks.
        kernel.advance(self.mesh, self.particles, self.dt, workspace)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PushTask(n={len(self.particles)}, dt={self.dt})"


class BatchHandle:
    """An in-flight batch returned by :meth:`Executor.start_batch`.

    ``wait(i)`` blocks until ``batch[i]``'s task has completed (its particle
    arrays hold the post-push values); ``finish()`` blocks until the whole
    batch is done and folds the batch's measurements into the executor's
    counters, work meter and exec tracer.  The scheduler uses the handle to
    overlap its own work — resuming ranks into the exchange phase — with
    still-running workers; executors without asynchrony return an
    already-completed handle, so callers never need to know which kind
    they hold.
    """

    def wait(self, i: int) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        raise NotImplementedError


class _EagerHandle(BatchHandle):
    """Handle for batches that already ran to completion synchronously."""

    def wait(self, i: int) -> None:
        pass

    def finish(self) -> None:
        pass


_EAGER_HANDLE = _EagerHandle()


class Executor:
    """Backend interface: run a batch of compute tasks.

    ``batch`` is a list of ``(world_rank, PushTask)`` in the scheduler's
    deterministic park order.  On return every task's particle arrays must
    be bitwise identical to running ``task.run()`` serially in that order.

    Every backend additionally honors a *kernel backend* selection —
    ``python`` (the numpy fused kernel) or ``compiled`` (the numba one,
    see :mod:`repro.core.kernel_compiled`) — either fleet-wide via
    ``kernel_backend`` or per world rank via ``backend_map`` (rank ->
    backend name; ranks not in the map use the fleet-wide choice).  The
    two kernels are bitwise-identical, so the selection can never change
    results, only wall-clock — which an optional
    :class:`~repro.runtime.costmodel.WorkRateMeter` (``work_meter``)
    observes as measured per-rank pushes/sec.
    """

    name = "?"
    #: Concrete kernel backend after resolution: "python", "compiled" or
    #: "compiled-parallel".
    kernel_backend = "python"

    def _init_kernel_backend(
        self, kernel_backend, backend_map, work_meter, exec_tracer=None
    ) -> None:
        """Shared constructor tail: resolve backend names eagerly so a
        ``compiled`` request without numba fails at build time."""
        resolve = kernel_compiled.resolve_backend
        self.kernel_backend = (
            "python" if kernel_backend is None else resolve(kernel_backend)
        )
        self.backend_map = (
            {}
            if not backend_map
            else {int(r): resolve(b) for r, b in backend_map.items()}
        )
        self.work_meter = work_meter
        self.exec_tracer = exec_tracer
        #: Per-tag batch/task/particle counters for batches stamped with an
        #: engine id (``start_batch(..., tag=...)``); untagged batches are
        #: not tracked.  Observational only — never touches results.
        self.tag_stats: dict[str, dict[str, int]] = {}

    def _backend_for(self, rank: int) -> str:
        return self.backend_map.get(rank, self.kernel_backend)

    def _note_tag(self, tag: str | None, batch: list[tuple[int, Any]]) -> None:
        if tag is None:
            return
        entry = self.tag_stats.setdefault(
            tag, {"batches": 0, "tasks": 0, "particles": 0}
        )
        entry["batches"] += 1
        entry["tasks"] += len(batch)
        entry["particles"] += sum(len(t.particles) for _, t in batch)

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        raise NotImplementedError

    def start_batch(
        self, batch: list[tuple[int, Any]], tag: str | None = None
    ) -> BatchHandle:
        """Begin a batch, returning a :class:`BatchHandle`.

        ``tag`` (optional) attributes the batch to an engine in
        :attr:`tag_stats` when several engines share one pool; it never
        affects execution.

        The default implementation runs the batch synchronously and hands
        back an already-completed handle: every executor without real
        asynchrony (serial, batched, pipe-dispatch process pools via
        ``run_batch``) therefore presents the *same* completion order to
        the scheduler, which is what keeps the overlapped-exchange resume
        policy backend-agnostic.
        """
        self._note_tag(tag, batch)
        self.run_batch(batch)
        return _EAGER_HANDLE

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def stats(self) -> dict:
        """Wall-clock / occupancy counters for reporting (never simulated)."""
        return {}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ExecutorHandle(Executor):
    """A per-engine view of a shared executor pool.

    Engines in an :class:`~repro.runtime.multiplex.EngineGroup` share one
    worker pool; each gets a handle carrying its engine tag, so every
    batch it dispatches is attributed in the base pool's
    :attr:`Executor.tag_stats` without the engine knowing it is sharing.
    ``close()`` is a no-op — the pool belongs to its owner (the group or
    the campaign runner), which closes the base exactly once.
    """

    def __init__(self, base: Executor, tag: str | None = None):
        self.base = base
        self.tag = tag

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.base.name

    @property
    def kernel_backend(self) -> str:  # type: ignore[override]
        return self.base.kernel_backend

    @property
    def tag_stats(self) -> dict:  # type: ignore[override]
        return self.base.tag_stats

    def start_batch(
        self, batch: list[tuple[int, Any]], tag: str | None = None
    ) -> BatchHandle:
        return self.base.start_batch(batch, tag=tag if tag is not None else self.tag)

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        self.base.run_batch(batch)

    def stats(self) -> dict:
        return self.base.stats()

    def close(self) -> None:
        """No-op: the shared pool is closed by its owner, not per engine."""


def _run_task(task, backend: str, workspace=None) -> None:
    """Run one task's push under the chosen kernel backend.

    The python path goes through ``task.run()`` (a dynamic
    ``kernel.advance`` call) so perf-harness monkeypatches keep applying;
    the compiled paths call the numba kernels on the particle fields.
    """
    if backend == "python":
        task.run(workspace)
        return
    p = task.particles
    if backend == "compiled":
        advance_arrays_compiled(
            task.mesh, p.x, p.y, p.vx, p.vy, p.q, task.dt
        )
    else:
        advance_arrays_parallel(
            task.mesh, p.x, p.y, p.vx, p.vy, p.q, task.dt
        )


class SerialExecutor(Executor):
    """Reference backend: each task inline, in park order."""

    name = "serial"

    def __init__(
        self,
        kernel_backend: str | None = None,
        backend_map=None,
        work_meter=None,
        exec_tracer=None,
    ) -> None:
        self._init_kernel_backend(
            kernel_backend, backend_map, work_meter, exec_tracer
        )
        self.batches = 0
        self._epoch: float | None = None

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        self.batches += 1
        measure = self.work_meter is not None or self.exec_tracer is not None
        if not measure:
            for rank, task in batch:
                _run_task(task, self._backend_for(rank))
            return
        if self._epoch is None:
            self._epoch = time.perf_counter()
        for rank, task in batch:
            n = len(task.particles)
            t0 = time.perf_counter()
            _run_task(task, self._backend_for(rank))
            dt = time.perf_counter() - t0
            if self.work_meter is not None:
                self.work_meter.record(rank, n, dt)
            if self.exec_tracer is not None:
                self.exec_tracer.record(
                    "task", rank, self.batches,
                    t0 - self._epoch, t0 - self._epoch + dt, n=n, rank=rank,
                )


class BatchedExecutor(Executor):
    """Fused backend: one kernel call over the concatenated batch.

    Tasks are grouped by ``(mesh, dt)`` (in practice one group); each
    group's field arrays are staged contiguously into a persistent buffer,
    advanced with a single :func:`advance_arrays` call, and copied back per
    rank segment.  Elementwise kernels are chunk-boundary-agnostic, so the
    fusion is bitwise exact; the staging copies are two extra passes traded
    against per-rank ufunc dispatch overhead.
    """

    name = "batched"

    #: x, y, vx, vy are copied back; q is read-only in the kernel.
    _N_STAGE_ROWS = 5

    def __init__(
        self,
        kernel_backend: str | None = None,
        backend_map=None,
        work_meter=None,
        exec_tracer=None,
    ) -> None:
        self._init_kernel_backend(
            kernel_backend, backend_map, work_meter, exec_tracer
        )
        self._stage = np.empty((self._N_STAGE_ROWS, 0), dtype=np.float64)
        self.batches = 0
        self.fused_tasks = 0

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        # Grouping by backend keeps fusion sound per kernel: a mixed
        # backend_map yields one fused call per (mesh, dt, backend).
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for rank, task in batch:
            if len(task.particles) == 0:
                continue
            key = (task.mesh, task.dt, self._backend_for(rank))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((rank, task))
        self.batches += 1
        measure = self.work_meter is not None or self.exec_tracer is not None
        for key in order:
            mesh, dt, backend = key
            pairs = groups[key]
            t0 = time.perf_counter() if measure else 0.0
            if len(pairs) == 1:
                _run_task(pairs[0][1], backend)
            else:
                self.fused_tasks += len(pairs)
                self._run_fused(mesh, dt, backend, [t for _, t in pairs])
            if measure:
                elapsed = time.perf_counter() - t0
                total = sum(len(t.particles) for _, t in pairs)
                if self.exec_tracer is not None:
                    self.exec_tracer.record(
                        "execute", -1, self.batches, 0.0, elapsed,
                        tasks=len(pairs), n=total,
                    )
                if self.work_meter is not None and total:
                    # A fused group yields one timing; attribute it to the
                    # member ranks proportionally to their particle share.
                    for rank, t in pairs:
                        n = len(t.particles)
                        self.work_meter.record(rank, n, elapsed * n / total)

    def _run_fused(self, mesh: Mesh, dt: float, backend: str, tasks: list) -> None:
        total = sum(len(t.particles) for t in tasks)
        if self._stage.shape[1] < total:
            self._stage = np.empty(
                (self._N_STAGE_ROWS, max(total, 2 * self._stage.shape[1])),
                dtype=np.float64,
            )
        x, y, vx, vy, q = (self._stage[i, :total] for i in range(5))
        bounds = []
        o = 0
        for t in tasks:
            p = t.particles
            n = len(p)
            x[o : o + n] = p.x
            y[o : o + n] = p.y
            vx[o : o + n] = p.vx
            vy[o : o + n] = p.vy
            q[o : o + n] = p.q
            bounds.append((o, o + n))
            o += n
        if backend == "python":
            advance_arrays(mesh, x, y, vx, vy, q, dt)
        elif backend == "compiled":
            advance_arrays_compiled(mesh, x, y, vx, vy, q, dt)
        else:
            advance_arrays_parallel(mesh, x, y, vx, vy, q, dt)
        for t, (a, b) in zip(tasks, bounds):
            p = t.particles
            p.x[:] = x[a:b]
            p.y[:] = y[a:b]
            p.vx[:] = vx[a:b]
            p.vy[:] = vy[a:b]

    def stats(self) -> dict:
        return dict(batches=self.batches, fused_tasks=self.fused_tasks)


# ----------------------------------------------------------------------
# Shared-memory arena
# ----------------------------------------------------------------------
class _Segment:
    __slots__ = ("shm", "size", "base", "offset", "_anchor")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.size = shm.size
        # Anchor a uint8 view to read the mapping's base address; kept
        # referenced so the memoryview export stays valid for locate().
        self._anchor = np.frombuffer(shm.buf, dtype=np.uint8)
        self.base = self._anchor.__array_interface__["data"][0]
        self.offset = 0


class ShmArena:
    """Grow-only pool of shared-memory segments with bump allocation.

    :meth:`alloc` hands out writable ndarray views into the segments (the
    allocator signature :class:`~repro.core.particles.ParticleArray`'s
    ``rebase_backing`` expects).  There is no per-array free; instead the
    arena keeps weak references to every array it handed out and recycles
    *all* segments (bump pointers reset) once none of them is alive — which
    between simulation runs they are not.  :meth:`locate` maps an arena
    array back to ``(segment_name, byte_offset)`` for worker-side attach.
    """

    def __init__(self, min_segment_bytes: int = 1 << 22) -> None:
        self._segments: list[_Segment] = []
        self._live: list[weakref.ref] = []
        self._min = int(min_segment_bytes)
        self._closed = False

    def alloc(self, capacity: int, dtype) -> np.ndarray:
        if self._closed:
            raise RuntimeError("allocation from a closed ShmArena")
        dtype = np.dtype(dtype)
        nbytes = -(-max(int(capacity), 0) * dtype.itemsize // _ALIGN) * _ALIGN
        self._reclaim()
        seg = next(
            (s for s in self._segments if s.size - s.offset >= nbytes), None
        )
        if seg is None:
            from multiprocessing import shared_memory

            size = max(nbytes, self._min, 2 * (self._segments[-1].size if self._segments else 0))
            seg = _Segment(shared_memory.SharedMemory(create=True, size=size))
            self._segments.append(seg)
        arr = np.frombuffer(
            seg.shm.buf, dtype=dtype, count=int(capacity), offset=seg.offset
        )
        seg.offset += nbytes
        self._live.append(weakref.ref(arr))
        return arr

    def _reclaim(self) -> None:
        self._live = [r for r in self._live if r() is not None]
        if not self._live:
            for seg in self._segments:
                seg.offset = 0

    def locate(self, arr: np.ndarray) -> tuple[str, int] | None:
        """``(segment_name, byte_offset)`` of an arena-resident array."""
        ptr = arr.__array_interface__["data"][0]
        for seg in self._segments:
            if seg.base <= ptr < seg.base + seg.size:
                return seg.shm.name, ptr - seg.base
        return None

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._live.clear()
        for seg in self._segments:
            seg._anchor = None
            try:
                seg.shm.close()
            except BufferError:
                # A handed-out view is still alive; parking the handle in
                # the zombie list keeps its __del__ from firing (and
                # raising the same BufferError as an unraisable warning)
                # until the views are gone — the unlink below already
                # released the name, so nothing leaks past process exit.
                _ZOMBIE_SEGMENTS.append(seg.shm)
            try:
                seg.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _attach_segment(name: str):
    """Attach to an existing segment without taking cleanup ownership.

    ``track=False`` (3.13+) skips resource-tracker registration entirely.
    On older Pythons the attach re-registers the name — harmless, because
    worker processes share the parent's tracker (the fd is inherited on
    both fork and spawn starts) and registration is a set-add; the parent's
    ``unlink`` still unregisters exactly once.  Do NOT explicitly
    unregister here: that would strip the *parent's* registration from the
    shared tracker and make the later unlink double-unregister.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: tracked attach, see above
        return shared_memory.SharedMemory(name=name)


def _worker_main(conn, warm_backends: tuple = ()) -> None:
    """Pipe-dispatch worker loop: recv task descriptors, push in place.

    A descriptor is ``(field_locs, n, mesh_args, dt, backend)`` where
    ``field_locs`` is five ``(segment_name, byte_offset)`` pairs for x, y,
    vx, vy, q and ``backend`` names the kernel to run it under.  All work
    happens through shared-memory views; the reply is
    ``(execute_seconds, particles_pushed, per_task)`` with ``per_task`` a
    list of ``(seconds, n)`` in descriptor order.

    ``warm_backends`` lists every JIT backend any rank may run (the parent
    collects it from the fleet-wide choice plus the backend_map); the
    worker compiles them all *before* the ready handshake, so one-time
    warm-up lands in ``pool_startup_s`` / ``jit_warmup_s`` and never
    inside a timed step.
    """
    segments: dict[str, Any] = {}
    workspace = KernelWorkspace()
    mesh_cache: dict[tuple, Mesh] = {}
    warm_s = sum(kernel_compiled.warmup(b) for b in warm_backends)
    conn.send(("ready", os.getpid(), warm_s))
    views = []
    while True:
        try:
            msg = conn.recv()
        except EOFError:  # pragma: no cover - parent died
            break
        if msg is None:
            break
        t0 = time.perf_counter()
        pushed = 0
        per_task = []
        for field_locs, n, mesh_args, dt, backend in msg:
            t1 = time.perf_counter()
            del views[:]
            for seg_name, off in field_locs:
                shm = segments.get(seg_name)
                if shm is None:
                    shm = _attach_segment(seg_name)
                    segments[seg_name] = shm
                views.append(
                    np.frombuffer(shm.buf, dtype=np.float64, count=n, offset=off)
                )
            mesh = mesh_cache.get(mesh_args)
            if mesh is None:
                mesh = Mesh(*mesh_args)
                mesh_cache[mesh_args] = mesh
            if backend == "python":
                advance_arrays(mesh, *views, dt, workspace=workspace)
            elif backend == "compiled":
                advance_arrays_compiled(mesh, *views, dt)
            else:
                advance_arrays_parallel(mesh, *views, dt)
            pushed += n
            per_task.append((time.perf_counter() - t1, n))
        del views[:]
        conn.send((time.perf_counter() - t0, pushed, per_task))
    for shm in segments.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
    conn.close()


# ----------------------------------------------------------------------
# Zero-copy dispatch rings
# ----------------------------------------------------------------------
# A per-worker shared-memory *task ring* replaces pickled descriptor lists
# on the steady-state path.  Layout (all 8-byte lanes, see
# docs/performance.md):
#
#     [ ctrl  int64[16]            ]   reserved / padding
#     [ rec_i int64[slots, 16]     ]   packed integer task records
#     [ rec_f float64[slots, 4]    ]   packed float task records
#     [ res   float64[slots, 2]    ]   per-slot results (seconds, n)
#
# The protocol is chunk-per-doorbell: the parent fills slots ``0..k-1``
# (k <= slots), stamps each record's turn-counter lane with the current
# dispatch-plan epoch, and rings a *doorbell* — a raw 16-byte
# ``os.write`` of ``(count, epoch)`` on a dedicated pipe, bypassing
# ``Connection.send``'s pickle/framing layer, which costs ~7x more CPU
# when the write has to wake a sleeping worker.  The worker processes
# those k slots in order, checking each record's epoch lane against the
# doorbell (a seqlock-style staleness guard), and replies one int token
# (the batch-relative work index) per completed task on the control
# pipe; the parent reads that slot's result lanes at token-consumption
# time.  The pipe write/read pair is the memory barrier in both
# directions, and the parent never doorbells a ring again until it has
# consumed every token of the chunk in flight — a slot is never
# overwritten while its result is pending, so no locks and no spinning.
#
# Because doorbells and control traffic (segment registrations,
# shutdown) now travel different pipes, the worker multiplexes both fds
# and always drains the control pipe first: the parent sends every
# registration a chunk depends on before ringing its doorbell, and both
# fds are already readable when ``select`` returns.
#
# The epoch stamping is what makes the steady state zero-copy: while the
# dispatch plan holds (same ranks, same arrays, same mesh/dt/backends),
# the static record lanes already sit in the ring from the previous
# batch, and publishing a new batch is one vectorized store of the
# particle-count lane plus the doorbell.
#
# Rings live in their own SharedMemory segments, deliberately *not* in
# the ShmArena: the arena recycles segments only when every handed-out
# view has died, and the rings' views live as long as the pool.

_CTRL_INTS = 16
_REC_INTS = 16
_REC_F64 = 4
_RES_F64 = 2

# Integer-record lanes.
_RI_SEG0 = 0      # [0:5]  arena segment ids of x, y, vx, vy, q
_RI_OFF0 = 5      # [5:10] byte offsets into those segments
_RI_N = 10        # particle count
_RI_CELLS = 11    # mesh cells
_RI_BACKEND = 12  # kernel backend id (_BACKEND_IDS)
_RI_SEQ = 13      # dispatch-plan epoch stamp (staleness guard)
_RI_WORK = 14     # batch-relative work index (the completion token)

# Float-record lanes.
_RF_H = 0
_RF_MESHQ = 1
_RF_DT = 2

_BACKEND_IDS = {"python": 0, "compiled": 1, "compiled-parallel": 2}
_BACKEND_NAMES = {v: k for k, v in _BACKEND_IDS.items()}

# Doorbell wire format: (count, epoch) as two little-endian int64.  16
# bytes is far below PIPE_BUF, so every doorbell write is atomic.
_DOORBELL = struct.Struct("<qq")


def _read_doorbell(fd: int) -> tuple[int, int] | None:
    """Read one ``(count, epoch)`` doorbell; ``None`` on EOF (parent gone)."""
    buf = b""
    while len(buf) < _DOORBELL.size:
        chunk = os.read(fd, _DOORBELL.size - len(buf))
        if not chunk:  # pragma: no cover - parent died mid-doorbell
            return None
        buf += chunk
    count, epoch = _DOORBELL.unpack(buf)
    return count, epoch


def _ring_nbytes(slots: int) -> int:
    return 8 * (_CTRL_INTS + slots * (_REC_INTS + _REC_F64 + _RES_F64))


def _map_ring(buf, slots: int):
    """``(rec_i, rec_f, res)`` ndarray views over a ring segment buffer."""
    o = 8 * _CTRL_INTS
    rec_i = np.frombuffer(buf, np.int64, slots * _REC_INTS, o)
    o += 8 * slots * _REC_INTS
    rec_f = np.frombuffer(buf, np.float64, slots * _REC_F64, o)
    o += 8 * slots * _REC_F64
    res = np.frombuffer(buf, np.float64, slots * _RES_F64, o)
    return (
        rec_i.reshape(slots, _REC_INTS),
        rec_f.reshape(slots, _REC_F64),
        res.reshape(slots, _RES_F64),
    )


class _TaskRing:
    """Parent-side handle on one worker's task ring."""

    __slots__ = (
        "shm", "slots", "rec_i", "rec_f", "res",
        "written_epoch", "chunk_total", "chunk_done",
    )

    def __init__(self, slots: int) -> None:
        from multiprocessing import shared_memory

        self.slots = int(slots)
        self.shm = shared_memory.SharedMemory(
            create=True, size=_ring_nbytes(self.slots)
        )
        self.rec_i, self.rec_f, self.res = _map_ring(self.shm.buf, self.slots)
        self.rec_i[:] = 0  # epoch lanes start at 0 = never published
        self.rec_f[:] = 0.0
        self.res[:] = 0.0
        #: Plan epoch whose full bin currently sits in slots 0..len(bin)-1,
        #: or -1.  When it matches the live plan, publishing the next batch
        #: only has to refresh the particle-count lane.
        self.written_epoch = -1
        self.chunk_total = 0  # tasks in the doorbelled chunk in flight
        self.chunk_done = 0   # tokens consumed of that chunk

    def close(self) -> None:
        self.rec_i = self.rec_f = self.res = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            _ZOMBIE_SEGMENTS.append(self.shm)
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _worker_ring_main(conn, bell, ring_name: str, slots: int,
                      warm_backends: tuple = ()) -> None:
    """Ring-dispatch worker loop: tasks from shared memory, not the pipe.

    Two channels from the parent: the control pipe ``conn`` carries
    segment registrations ``("seg", id, name)`` and the ``None``
    shutdown, and the raw doorbell pipe ``bell`` carries 16-byte
    ``(count, epoch)`` chunk announcements (see ``_DOORBELL``).  The
    worker multiplexes both and drains control first, so a registration
    is always applied before any doorbell that references it.  Replies
    (the ready handshake and one int token per completed task) go back
    on ``conn``.  Task payloads (field locations, mesh parameters, dt,
    backend) arrive through the fixed-layout ring this worker attached
    at startup, so the per-task dispatch cost on the parent is a handful
    of int64/float64 stores — or, on a cached plan, one vectorized
    particle-count refresh — instead of a pickle round-trip.
    """
    segments: dict[str, Any] = {}
    seg_by_id: dict[int, Any] = {}
    workspace = KernelWorkspace()
    mesh_cache: dict[tuple, Mesh] = {}
    warm_s = sum(kernel_compiled.warmup(b) for b in warm_backends)
    ring_shm = _attach_segment(ring_name)
    rec_i, rec_f, res = _map_ring(ring_shm.buf, slots)
    conn.send(("ready", os.getpid(), warm_s))
    conn_fd = conn.fileno()
    bell_fd = bell.fileno()
    ri = rf = None
    running = True
    while running:
        ready, _, _ = select.select([conn_fd, bell_fd], [], [])
        if conn_fd in ready:
            # Control first: the parent sent any registration this
            # chunk depends on before ringing the doorbell.
            while True:
                try:
                    msg = conn.recv()
                except EOFError:  # pragma: no cover - parent died
                    running = False
                    break
                if msg is None:
                    running = False
                    break
                _, seg_id, name = msg  # ("seg", id, name)
                shm = segments.get(name)
                if shm is None:
                    shm = _attach_segment(name)
                    segments[name] = shm
                seg_by_id[seg_id] = shm
                if not conn.poll(0):
                    break
        if not running or bell_fd not in ready:
            continue
        db = _read_doorbell(bell_fd)
        if db is None:  # pragma: no cover - parent died
            break
        count, epoch = db
        for slot in range(count):
            ri = rec_i[slot]
            if int(ri[_RI_SEQ]) != epoch:  # pragma: no cover - protocol bug
                raise RuntimeError(
                    f"task ring slot {slot} is stale: holds plan epoch "
                    f"{int(ri[_RI_SEQ])}, doorbell said {epoch}"
                )
            t1 = time.perf_counter()
            n = int(ri[_RI_N])
            views = [
                np.frombuffer(
                    seg_by_id[int(ri[_RI_SEG0 + k])].buf,
                    dtype=np.float64, count=n, offset=int(ri[_RI_OFF0 + k]),
                )
                for k in range(5)
            ]
            rf = rec_f[slot]
            mesh_args = (
                int(ri[_RI_CELLS]), float(rf[_RF_H]), float(rf[_RF_MESHQ])
            )
            mesh = mesh_cache.get(mesh_args)
            if mesh is None:
                mesh = Mesh(*mesh_args)
                mesh_cache[mesh_args] = mesh
            dt = float(rf[_RF_DT])
            backend = _BACKEND_NAMES[int(ri[_RI_BACKEND])]
            if backend == "python":
                advance_arrays(mesh, *views, dt, workspace=workspace)
            elif backend == "compiled":
                advance_arrays_compiled(mesh, *views, dt)
            else:
                advance_arrays_parallel(mesh, *views, dt)
            res[slot, 0] = time.perf_counter() - t1
            res[slot, 1] = n
            del views
            conn.send(int(ri[_RI_WORK]))  # token; send is the write barrier
    # Drop every ndarray view (including the slot slices) before closing,
    # or SharedMemory.close() raises BufferError over exported pointers.
    ri = rf = rec_i = rec_f = res = None
    for shm in list(segments.values()) + [ring_shm]:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
    bell.close()
    conn.close()


def _partition(sizes: list[int], k: int) -> list[list[int]]:
    """Deterministic LPT: largest task to least-loaded worker, stable ties."""
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    loads = [0] * k
    bins: list[list[int]] = [[] for _ in range(k)]
    for i in order:
        b = min(range(k), key=lambda j: (loads[j], j))
        bins[b].append(i)
        loads[b] += sizes[i]
    for b in bins:
        b.sort()
    return bins


class _RingHandle(BatchHandle):
    """In-flight ring-dispatch batch on a :class:`ProcessExecutor`.

    A batch whose per-worker bin exceeds the ring size is published in
    chunks of up to ``ring_slots`` tasks; follow-on chunks go out from
    :meth:`wait` as soon as the chunk in flight has fully drained (slots
    are only reused once their results were consumed).
    """

    __slots__ = (
        "_ex", "_work", "_work_of", "_bins", "_locs", "_pub", "_owner",
        "_t_d0", "_t_pub", "_cpu_s", "_finished",
    )

    def __init__(self, ex, work, work_of, bins, locs, pub, t_d0, t_pub,
                 cpu_s) -> None:
        self._ex = ex
        self._work = work
        self._work_of = work_of
        self._bins = bins
        self._locs = locs
        self._pub = pub  # per-worker count of bin entries published so far
        self._owner = {i: w for w, b in enumerate(bins) for i in b}
        self._t_d0 = t_d0
        self._t_pub = t_pub
        self._cpu_s = cpu_s
        self._finished = False

    def wait(self, i: int) -> None:
        wi = self._work_of[i]
        if wi is None:  # empty task: completed by construction
            return
        ex = self._ex
        w = self._owner[wi]
        bin_idxs = self._bins[w]
        while wi not in ex._batch_task:
            ring = ex._rings[w]
            if (ring.chunk_done >= ring.chunk_total
                    and self._pub[w] < len(bin_idxs)):
                self._pub[w] = ex._publish_chunk(
                    w, self._work, bin_idxs, self._locs, self._pub[w]
                )
            else:
                ex._consume_token(w)

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        ex = self._ex
        for i in range(len(self._work_of)):
            self.wait(i)
        t_merged = ex._now()
        ex.batches += 1
        ex.tasks_executed += len(self._work)
        pushed = sum(n for _, n in ex._batch_task.values())
        ex.particles_pushed += pushed
        if ex.work_meter is not None:
            for i, (rank, _task) in enumerate(self._work):
                task_s, n = ex._batch_task[i]
                ex.work_meter.record(rank, n, task_s)
        tr = ex.exec_tracer
        if tr is not None:
            used = [w for w, b in enumerate(self._bins) if b]
            tr.record(
                "dispatch", -1, ex.batches, self._t_d0, self._t_pub,
                tasks=len(self._work), cpu_s=self._cpu_s,
            )
            for w in used:
                dur = sum(ex._batch_task[i][0] for i in self._bins[w])
                tr.record(
                    "execute", w, ex.batches, self._t_pub, self._t_pub + dur,
                    tasks=len(self._bins[w]),
                )
                t_task = self._t_pub
                for i in self._bins[w]:
                    task_s, n = ex._batch_task[i]
                    tr.record(
                        "task", w, ex.batches, t_task, t_task + task_s,
                        rank=self._work[i][0], n=n,
                    )
                    t_task += task_s
            tr.record(
                "merge", -1, ex.batches, self._t_pub, t_merged, tasks=len(used)
            )


class _PipeHandle(BatchHandle):
    """In-flight pipe-dispatch batch: one recv per used worker."""

    __slots__ = (
        "_ex", "_work", "_work_of", "_bins", "_owner", "_used",
        "_t_d0", "_t_sent", "_cpu_s", "_durations", "_per_task", "_pushed",
        "_finished",
    )

    def __init__(self, ex, work, work_of, bins, t_d0, t_sent, cpu_s) -> None:
        self._ex = ex
        self._work = work
        self._work_of = work_of
        self._bins = bins
        self._owner = {i: w for w, b in enumerate(bins) for i in b}
        self._used = [w for w, b in enumerate(bins) if b]
        self._t_d0 = t_d0
        self._t_sent = t_sent
        self._cpu_s = cpu_s
        self._durations: dict[int, float] = {}
        self._per_task: dict[int, list] = {}
        self._pushed = 0
        self._finished = False

    def _collect(self, w: int) -> None:
        if w in self._durations:
            return
        dur, pushed, per_task = self._ex._conns[w].recv()
        self._durations[w] = dur
        self._per_task[w] = per_task
        self._pushed += pushed

    def wait(self, i: int) -> None:
        wi = self._work_of[i]
        if wi is None:
            return
        # Worker granularity: one reply covers the whole bin.
        self._collect(self._owner[wi])

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        ex = self._ex
        for w in self._used:
            self._collect(w)
        t_merged = ex._now()
        ex.particles_pushed += self._pushed
        ex.batches += 1
        ex.tasks_executed += len(self._work)
        if ex.work_meter is not None:
            for w in self._used:
                for i, (task_s, n) in zip(self._bins[w], self._per_task[w]):
                    ex.work_meter.record(self._work[i][0], n, task_s)
        tr = ex.exec_tracer
        if tr is not None:
            t_sent = self._t_sent
            tr.record(
                "dispatch", -1, ex.batches, self._t_d0, t_sent,
                tasks=len(self._work), cpu_s=self._cpu_s,
            )
            for w in self._used:
                tr.record(
                    "execute", w, ex.batches, t_sent,
                    t_sent + self._durations[w], tasks=len(self._bins[w]),
                )
                # Per-task wall spans on the worker's sequential timeline,
                # tagged with the owning world rank: the measured-rate
                # evidence behind WorkRateMeter, kept out of golden traces.
                t_task = t_sent
                for i, (task_s, n) in zip(self._bins[w], self._per_task[w]):
                    tr.record(
                        "task", w, ex.batches, t_task, t_task + task_s,
                        rank=self._work[i][0], n=n,
                    )
                    t_task += task_s
            tr.record(
                "merge", -1, ex.batches, t_sent, t_merged,
                tasks=len(self._used),
            )


class ProcessExecutor(Executor):
    """Real-multicore backend: persistent worker pool over shared memory.

    ``workers=0`` means one per host core.  The pool and arena are lazily
    started on the first batch and survive across runs — benchmark
    repetitions and whole test suites reuse one warmed pool
    (``pool_startup_s`` reports the one-time fork/spawn cost separately).

    Two dispatch paths (``dispatch=``, default from ``REPRO_DISPATCH``):

    ``ring``
        Zero-copy steady state.  Task records go through per-worker
        shared-memory rings (see the ring section above) and a *dispatch
        plan* — arena locations, segment-id registrations and the LPT
        partition — is cached across batches, keyed on the work list's
        identity (ranks, field arrays, mesh objects, dt).  A steady-state
        step refreshes one particle-count lane per worker ring and sends
        one doorbell each: no pickling, no descriptor rebuild, no
        per-task stores.

    ``pipe``
        The original pickled-descriptor path, kept as the measured
        baseline for :func:`repro.bench.perf.bench_dispatch` and as a
        fallback.

    Workers boot concurrently: :meth:`start` spawns without blocking and
    :meth:`ensure_ready` collects the ready handshakes, so ``workers=N``
    costs roughly one worker's startup, not N of them, and the parent's
    plan resolution overlaps worker boot on the first batch.

    Optional ``exec_tracer`` (:class:`repro.instrument.ExecutorTrace`)
    receives per-batch dispatch/execute/merge spans on a *wall-clock*
    timebase.  They are deliberately kept out of the simulated-time
    :class:`~repro.instrument.Tracer` so golden traces stay byte-identical
    across backends and runs.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 0,
        exec_tracer=None,
        mp_context: str | None = None,
        kernel_backend: str | None = None,
        backend_map=None,
        work_meter=None,
        dispatch: str | None = None,
        ring_slots: int | None = None,
    ) -> None:
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("need at least one worker")
        self._init_kernel_backend(
            kernel_backend, backend_map, work_meter, exec_tracer
        )
        if dispatch is None or ring_slots is None:
            # None means "not chosen anywhere upstream": fall back to the
            # documented env/default chain so default_executor() and the
            # resume path honor REPRO_DISPATCH / REPRO_RING_SLOTS.
            from repro.config.env import resolve_dispatch, resolve_ring_slots

            if dispatch is None:
                dispatch = resolve_dispatch()
            if ring_slots is None:
                ring_slots = resolve_ring_slots()
        if dispatch not in ("ring", "pipe"):
            raise ValueError(
                f"unknown dispatch path {dispatch!r} (ring, pipe)"
            )
        self.dispatch = dispatch
        self.ring_slots = int(ring_slots)
        if self.ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        self._ctx_name = mp_context or os.environ.get("REPRO_MP_CONTEXT", "spawn")
        self.arena = ShmArena()
        self._procs: list = []
        self._conns: list = []
        self._bells: list = []  # parent-side doorbell write ends (ring path)
        self._rings: list[_TaskRing] = []
        self._ready = False
        self._spawn_t0: float | None = None
        self._epoch: float | None = None
        self.pool_startup_s = 0.0
        self.jit_warmup_s = 0.0
        self.batches = 0
        self.tasks_executed = 0
        self.particles_pushed = 0
        # Dispatch-plan cache (ring path).
        self._plan_items: list[tuple] | None = None
        self._plan_bins: list[list[int]] | None = None
        self._plan_locs: list[tuple] | None = None
        self._batch_sizes: list[int] = []
        self._seg_ids: dict[str, int] = {}
        self.plan_epoch = 0
        self.plan_hits = 0
        self.plan_misses = 0
        # Completions of the in-flight batch: work idx -> (seconds, n).
        self._batch_task: dict[int, tuple[float, int]] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the pool without waiting for handshakes (idempotent).

        All workers boot *concurrently* — interpreter start and JIT
        warm-up overlap across workers and with whatever the parent does
        next (typically dispatch-plan resolution).  Call
        :meth:`ensure_ready` before exchanging any task traffic.
        """
        if self._procs:
            return
        import multiprocessing as mp

        self._spawn_t0 = time.perf_counter()
        ctx = mp.get_context(self._ctx_name)
        # Workers pre-warm every JIT backend any rank may run.
        warm_backends = tuple(sorted(
            {self.kernel_backend, *self.backend_map.values()} - {"python"}
        ))
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            bell_r = None
            if self.dispatch == "ring":
                ring = _TaskRing(self.ring_slots)
                self._rings.append(ring)
                # The doorbell pipe is a Connection pair only so the read
                # end survives the spawn context (raw fd numbers do not);
                # both ends are used as raw fds via os.write/os.read.
                bell_r, bell_w = ctx.Pipe(duplex=False)
                self._bells.append(bell_w)
                target = _worker_ring_main
                args = (
                    child_conn, bell_r, ring.shm.name, self.ring_slots,
                    warm_backends,
                )
            else:
                target = _worker_main
                args = (child_conn, warm_backends)
            proc = ctx.Process(
                target=target, args=args, name=f"repro-exec-{i}", daemon=True
            )
            proc.start()
            child_conn.close()
            if bell_r is not None:
                bell_r.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def ensure_ready(self) -> None:
        """Collect the ready handshakes; records ``pool_startup_s``.

        Must run before the first :meth:`_consume_token` — the handshake
        travels the same pipe as completion tokens.
        """
        if self._ready:
            return
        self.start()
        for conn in self._conns:
            msg = conn.recv()  # ("ready", pid, warm_s)
            self.jit_warmup_s = max(self.jit_warmup_s, msg[2])
        self.pool_startup_s = time.perf_counter() - self._spawn_t0
        self._ready = True
        if self._epoch is None:
            self._epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _field_locs(self, particles) -> list[tuple[str, int]]:
        """Arena locations of the five kernel fields; rebase on first miss."""
        fields = (particles.x, particles.y, particles.vx, particles.vy, particles.q)
        locs = [self.arena.locate(a) for a in fields]
        if any(loc is None for loc in locs):
            particles.rebase_backing(self.arena.alloc)
            fields = (particles.x, particles.y, particles.vx, particles.vy, particles.q)
            locs = [self.arena.locate(a) for a in fields]
            assert all(loc is not None for loc in locs)
        return locs

    # ------------------------------------------------------------------
    # Dispatch-plan cache (ring path)
    # ------------------------------------------------------------------
    def _plan_for(self, work) -> tuple[list[list[int]], list[tuple]]:
        """``(bins, locs)`` for this work list, cached across batches.

        The plan is keyed on the work list's *identity*: per task the
        rank, the particle container plus its backing-store
        ``generation``, the mesh object and dt.  The (container,
        generation) pair pins the five field base pointers: the in-place
        particle mutators (``compact``/``extend_packed``) re-slice fresh
        view objects every step while the stores stay put, and the
        generation bumps exactly when the stores are replaced (growth or
        rebase) — see :attr:`ParticleArray.generation`.  The cache holds
        strong references and validates with ``is`` — no pointer reads,
        no hashing, and (unlike raw ``id()`` keys) no aliasing after a
        GC, because the keyed objects are kept alive.  Particle counts
        are deliberately NOT part of the identity: exchange changes them
        every step, and that is exactly the steady state the cache
        targets — on a hit only the count lanes are refreshed.  A hit
        whose new sizes leave the cached partition lopsided (max bin
        load > 1.5x the mean over used bins) re-runs LPT on the spot.

        Generation bumps get a *partial* refresh rather than a full
        miss: when the work list's structure still matches (same
        containers, meshes, ranks, dt) and only some backing stores
        moved (capacity growth), just those tasks' field locations are
        re-resolved and the rest of the plan is kept.  That matters
        because with many ranks the containers cross their capacities at
        staggered times — a full replan per growth event would make
        growth-heavy phases pay the cold-plan cost nearly every batch.
        """
        items = self._plan_items
        changed: list[int] | None = None
        if items is not None and len(items) == len(work):
            changed = []
            for j, ((rank, t), it) in enumerate(zip(work, items)):
                p = t.particles
                if (it[0] is not p or it[2] is not t.mesh
                        or it[3] != rank or it[4] != t.dt):
                    changed = None
                    break
                # p.__dict__ access instead of the generation property:
                # this check runs per task per batch and is the whole
                # steady-state plan cost.
                if it[1] != p.__dict__.get("_gen", 0):
                    changed.append(j)
        hit = changed is not None and not changed
        sizes = [len(t.particles) for _, t in work]
        self._batch_sizes = sizes
        if hit:
            loads = [
                sum(sizes[i] for i in b) for b in self._plan_bins if b
            ]
            if loads and max(loads) > 1.5 * (sum(loads) / len(loads)):
                # Drift: arrays unchanged but the load moved.  Locations
                # and segment registrations stay valid; only re-partition.
                # The epoch bump forces full ring writes (bins changed).
                self._plan_bins = _partition(sizes, self.workers)
                self.plan_epoch += 1
                self.plan_misses += 1
            else:
                self.plan_hits += 1
            return self._plan_bins, self._plan_locs
        if changed is not None:
            # Partial refresh: structure intact, some stores regrown.
            locs = self._plan_locs
            for j in changed:
                rank, t = work[j]
                locs[j] = self._resolve_locs(t.particles)
                p = t.particles
                items[j] = (p, p.__dict__.get("_gen", 0), t.mesh, rank, t.dt)
            # Growth means sizes moved: re-run LPT.  The epoch bump
            # forces full ring writes (changed tasks' location lanes are
            # stale in the rings).
            self._plan_bins = _partition(sizes, self.workers)
            self.plan_epoch += 1
            self.plan_misses += 1
            return self._plan_bins, self._plan_locs
        locs = []
        items = []
        for rank, t in work:
            locs.append(self._resolve_locs(t.particles))
            # Identity captured AFTER the location resolve: it may have
            # rebased the particle container (a generation bump).
            p = t.particles
            items.append(
                (p, p.__dict__.get("_gen", 0), t.mesh, rank, t.dt)
            )
        self._plan_items = items
        self._plan_bins = _partition(sizes, self.workers)
        self._plan_locs = locs
        self.plan_epoch += 1
        self.plan_misses += 1
        return self._plan_bins, self._plan_locs

    def _resolve_locs(self, particles) -> tuple[tuple, tuple]:
        """``(seg_ids, offsets)`` of a container's five kernel fields.

        New arena segments are registered with every worker on the spot.
        Ordering is safe: any doorbell that references them is sent
        later, and the ring workers drain control traffic first.
        """
        seg_ids = []
        offs = []
        for name, off in self._field_locs(particles):
            sid = self._seg_ids.get(name)
            if sid is None:
                sid = len(self._seg_ids)
                self._seg_ids[name] = sid
                for conn in self._conns:
                    conn.send(("seg", sid, name))
            seg_ids.append(sid)
            offs.append(off)
        return tuple(seg_ids), tuple(offs)

    def _publish_chunk(self, w, work, bin_idxs, locs, start, *,
                       doorbell: bool = True) -> int:
        """Publish up to ``ring_slots`` of worker ``w``'s bin from ``start``.

        Steady-state fast path: when the ring already holds this plan's
        full bin (``written_epoch`` matches and the bin fits in one
        chunk), the static lanes — field locations, mesh, backend, work
        index, epoch stamp — are still valid from the previous batch and
        only the particle-count lane is stored, vectorized.  Otherwise
        every record is written and stamped with the current plan epoch.

        Returns the new publish cursor.  With ``doorbell=False`` the
        caller batches the raw ``(k, epoch)`` doorbell writes itself (so
        all ring writes of a batch land before the first worker wakes).
        """
        ring = self._rings[w]
        total = len(bin_idxs)
        k = min(ring.slots, total - start)
        epoch = self.plan_epoch
        if start == 0 and k == total and ring.written_epoch == epoch:
            sizes = self._batch_sizes
            ring.rec_i[:k, _RI_N] = [sizes[i] for i in bin_idxs]
        else:
            rec_i = ring.rec_i
            rec_f = ring.rec_f
            for slot in range(k):
                i = bin_idxs[start + slot]
                rank, task = work[i]
                seg_ids, offs = locs[i]
                m = task.mesh
                ri = rec_i[slot]
                ri[_RI_SEG0:_RI_SEG0 + 5] = seg_ids
                ri[_RI_OFF0:_RI_OFF0 + 5] = offs
                ri[_RI_N] = len(task.particles)
                ri[_RI_CELLS] = m.cells
                ri[_RI_BACKEND] = _BACKEND_IDS[self._backend_for(rank)]
                ri[_RI_WORK] = i
                ri[_RI_SEQ] = epoch
                rf = rec_f[slot]
                rf[_RF_H] = m.h
                rf[_RF_MESHQ] = m.q
                rf[_RF_DT] = task.dt
            # Only a whole-bin single-chunk write arms the fast path.
            ring.written_epoch = epoch if (start == 0 and k == total) else -1
        ring.chunk_total = k
        ring.chunk_done = 0
        if doorbell:
            os.write(self._bells[w].fileno(), _DOORBELL.pack(k, epoch))
        return start + k

    def _consume_token(self, w: int) -> int:
        """Blockingly consume one completion token from worker ``w``.

        Tokens arrive in the worker's processing order, which is slot
        order within the doorbelled chunk, so ``chunk_done`` names the
        completed slot.  The pipe recv is the read barrier: the worker
        stored the result lanes before sending, and the slot cannot be
        republished until the whole chunk has drained.
        """
        tok = int(self._conns[w].recv())
        ring = self._rings[w]
        slot = ring.chunk_done
        self._batch_task[tok] = (
            float(ring.res[slot, 0]), int(ring.res[slot, 1])
        )
        ring.chunk_done += 1
        return tok

    # ------------------------------------------------------------------
    def start_batch(
        self, batch: list[tuple[int, Any]], tag: str | None = None
    ) -> BatchHandle:
        self._note_tag(tag, batch)
        work = []
        work_of: list[int | None] = []
        for rank, task in batch:
            if len(task.particles):
                work_of.append(len(work))
                work.append((rank, task))
            else:
                work_of.append(None)
        if not work:
            return _EAGER_HANDLE
        self.start()
        # Parent-side dispatch cost is also metered in CPU seconds
        # (process_time): on an oversubscribed host the doorbell send can
        # wake a worker that preempts the parent, and the worker's kernel
        # time would otherwise be double-counted into the wall-clock
        # dispatch span (it is already reported by the execute spans).
        cpu0 = time.process_time()
        # First batch: the dispatch clock can only start once the pool's
        # epoch exists; plan resolution still overlaps worker boot.
        t_d0 = self._now() if self._ready else None
        if self.dispatch == "pipe":
            return self._start_batch_pipe(work, work_of, t_d0, cpu0)
        return self._start_batch_ring(work, work_of, t_d0, cpu0)

    def _start_batch_ring(self, work, work_of, t_d0, cpu0) -> BatchHandle:
        bins, locs = self._plan_for(work)
        self.ensure_ready()
        if t_d0 is None:
            t_d0 = self._now()
        self._batch_task = {}
        pub = [0] * self.workers
        # All ring writes first, then all doorbells: on an oversubscribed
        # host the first doorbell may wake a worker that preempts the
        # parent, and the remaining writes should already be done.
        used = []
        for w, idxs in enumerate(bins):
            if idxs:
                pub[w] = self._publish_chunk(
                    w, work, idxs, locs, 0, doorbell=False
                )
                used.append(w)
        epoch = self.plan_epoch
        for w in used:
            os.write(
                self._bells[w].fileno(),
                _DOORBELL.pack(self._rings[w].chunk_total, epoch),
            )
        cpu_s = time.process_time() - cpu0
        t_pub = self._now()
        return _RingHandle(
            self, work, work_of, bins, locs, pub, t_d0, t_pub, cpu_s
        )

    def _start_batch_pipe(self, work, work_of, t_d0, cpu0) -> BatchHandle:
        descs = []
        for rank, task in work:
            m = task.mesh
            descs.append(
                (
                    self._field_locs(task.particles),
                    len(task.particles),
                    (m.cells, m.h, m.q),
                    task.dt,
                    self._backend_for(rank),
                )
            )
        self.ensure_ready()
        if t_d0 is None:
            t_d0 = self._now()
        sizes = [d[1] for d in descs]
        bins = _partition(sizes, self.workers)
        for w, idxs in enumerate(bins):
            if idxs:
                self._conns[w].send([descs[i] for i in idxs])
        cpu_s = time.process_time() - cpu0
        t_sent = self._now()
        return _PipeHandle(self, work, work_of, bins, t_d0, t_sent, cpu_s)

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        # Synchronous wrapper over start_batch/wait/finish: the completion
        # barrier ("merge") is deterministic because workers wrote disjoint
        # shared-memory regions in place.
        handle = self.start_batch(batch)
        for i in range(len(batch)):
            handle.wait(i)
        handle.finish()

    def stats(self) -> dict:
        return dict(
            workers=self.workers,
            pool_startup_s=self.pool_startup_s,
            jit_warmup_s=self.jit_warmup_s,
            kernel_backend=self.kernel_backend,
            dispatch=self.dispatch,
            ring_slots=self.ring_slots,
            plan_epoch=self.plan_epoch,
            plan_hits=self.plan_hits,
            plan_misses=self.plan_misses,
            batches=self.batches,
            tasks_executed=self.tasks_executed,
            particles_pushed=self.particles_pushed,
            arena_bytes=self.arena.total_bytes,
        )

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        for bell in self._bells:
            bell.close()
        self._procs.clear()
        self._conns.clear()
        self._bells.clear()
        for ring in self._rings:
            ring.close()
        self._rings.clear()
        self._ready = False
        self._spawn_t0 = None
        # The plan's segment-id registrations died with the workers.
        self._plan_items = None
        self._plan_bins = None
        self._plan_locs = None
        self._seg_ids.clear()
        self._batch_task = {}
        self.arena.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def make_executor(
    name: str,
    workers: int = 0,
    exec_tracer=None,
    kernel_backend: str | None = None,
    backend_map=None,
    work_meter=None,
    dispatch: str | None = None,
    ring_slots: int | None = None,
) -> Executor:
    """Build a backend by name (the CLI's ``--executor`` values).

    ``kernel_backend`` is a request name (python/compiled/
    compiled-parallel/auto, None = python); it is resolved eagerly, so
    asking for a compiled backend without numba raises here, not mid-run.
    ``dispatch``/``ring_slots`` apply to the process pool only (None =
    resolve from ``REPRO_DISPATCH`` / ``REPRO_RING_SLOTS``).
    """
    kw = dict(
        kernel_backend=kernel_backend,
        backend_map=backend_map,
        work_meter=work_meter,
        exec_tracer=exec_tracer,
    )
    if name == "serial":
        return SerialExecutor(**kw)
    if name == "batched":
        return BatchedExecutor(**kw)
    if name == "process":
        return ProcessExecutor(
            workers=workers, dispatch=dispatch, ring_slots=ring_slots, **kw
        )
    raise ValueError(f"unknown executor {name!r} (serial, batched, process)")


_DEFAULT: Executor | None = None


def default_executor() -> Executor:
    """Process-wide executor from ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``.

    Cached so that every scheduler in the process (e.g. a whole test-suite
    run under ``REPRO_EXECUTOR=process``) shares one warmed worker pool.
    The env parsing (and the full CLI > env > spec > default precedence
    chain) lives in :mod:`repro.config.env`.
    """
    global _DEFAULT
    if _DEFAULT is None:
        from repro.config.env import (
            resolve_executor,
            resolve_kernel_backend,
            resolve_workers,
        )

        _DEFAULT = make_executor(
            resolve_executor(),
            workers=resolve_workers(),
            kernel_backend=resolve_kernel_backend(),
        )
        if isinstance(_DEFAULT, ProcessExecutor):
            atexit.register(_DEFAULT.close)
    return _DEFAULT
