"""Pluggable compute-execution backends for the scheduler's compute op.

The deterministic scheduler interleaves every simulated rank in one Python
process, so an N-rank run historically used exactly one host core no matter
how many the machine has.  This module turns the per-step particle push —
the only data-parallel, cross-rank-independent phase of the PIC loop — into
*dispatchable work*: rank programs attach a :class:`PushTask` descriptor to
their compute op instead of running the kernel inline, the scheduler
collects every simultaneously runnable task into a batch (see
``Scheduler._flush_compute``), and an :class:`Executor` runs the batch.

Three backends, all bitwise-identical in results, simulated times and
golden traces (``tests/parallel/test_executor_determinism.py``):

``serial``
    The reference: runs each task in park order, exactly the work the rank
    would have done inline.

``batched``
    Stacks all runnable ranks' particle slices into one staging buffer and
    drives a single fused :func:`repro.core.kernel.advance_arrays` call over
    the concatenation.  The kernel is elementwise, so concatenation changes
    chunk boundaries but not a single result bit; what it does change is the
    number of numpy ufunc dispatches — ~50 per *batch* instead of ~50 per
    *rank* — which is where many-small-rank configs (the AMPI VP sweeps)
    spend their wall clock.

``process``
    A persistent ``multiprocessing`` worker pool operating on
    ``multiprocessing.shared_memory`` views of the pooled
    :class:`~repro.core.particles.ParticleArray` backing stores.  The parent
    rebases each rank's backing store into a shared-memory arena once
    (:meth:`ParticleArray.rebase_backing`); after that a steady-state step
    ships only ``(segment, offset, length)`` descriptors — zero particle
    bytes cross the pipe in either direction.  Workers mutate the shared
    pages in place; completion is collected in fixed worker order, so the
    merge is deterministic.  Results are bitwise identical to serial because
    each worker runs the very same :func:`advance_arrays` on the very same
    bytes, and tasks never overlap.

Determinism argument, in one place: the scheduler charges simulated clocks
when the compute op is *dispatched* (unchanged from the inline days), tasks
touch only rank-local particle arrays, and every backend leaves each task's
arrays bitwise equal to a serial in-order execution.  Nothing downstream —
exchange routing, message sizes, collectives, verification — can observe
which backend ran.

Shared-memory lifecycle (see docs/performance.md): the arena is a grow-only
pool of segments with bump allocation; a segment set is recycled wholesale
when every array previously handed out has been garbage collected (between
runs, in practice).  The executor unlinks all segments on :meth:`close`,
and the process-wide default executor registers an ``atexit`` hook.
"""

from __future__ import annotations

import atexit
import os
import time
import weakref
from typing import Any

import numpy as np

from repro.core import kernel, kernel_compiled
from repro.core.kernel import KernelWorkspace, advance_arrays
from repro.core.kernel_compiled import advance_arrays_compiled
from repro.core.mesh import Mesh

__all__ = [
    "PushTask",
    "Executor",
    "SerialExecutor",
    "BatchedExecutor",
    "ProcessExecutor",
    "ShmArena",
    "make_executor",
    "default_executor",
]

#: Shared-memory offsets are aligned to cache lines.
_ALIGN = 64

#: Unlinked segments whose mappings could not be closed yet because caller
#: views were still alive (see :meth:`ShmArena.close`).
_ZOMBIE_SEGMENTS: list = []


class PushTask:
    """Descriptor of one rank's particle push: the work behind a compute op.

    Carries the *data* of the closure the rank used to run inline
    (mesh, particle container, dt) rather than opaque Python state, so
    executors can fuse tasks or ship them to workers.  ``run()`` is the
    serial reference semantics.
    """

    __slots__ = ("mesh", "particles", "dt")

    def __init__(self, mesh: Mesh, particles, dt: float):
        self.mesh = mesh
        self.particles = particles
        self.dt = dt

    def run(self, workspace: KernelWorkspace | None = None) -> None:
        # Dynamic module-attribute call so perf-harness patches of
        # ``kernel.advance`` (use_legacy_kernel) apply to dispatched tasks.
        kernel.advance(self.mesh, self.particles, self.dt, workspace)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PushTask(n={len(self.particles)}, dt={self.dt})"


class Executor:
    """Backend interface: run a batch of compute tasks.

    ``batch`` is a list of ``(world_rank, PushTask)`` in the scheduler's
    deterministic park order.  On return every task's particle arrays must
    be bitwise identical to running ``task.run()`` serially in that order.

    Every backend additionally honors a *kernel backend* selection —
    ``python`` (the numpy fused kernel) or ``compiled`` (the numba one,
    see :mod:`repro.core.kernel_compiled`) — either fleet-wide via
    ``kernel_backend`` or per world rank via ``backend_map`` (rank ->
    backend name; ranks not in the map use the fleet-wide choice).  The
    two kernels are bitwise-identical, so the selection can never change
    results, only wall-clock — which an optional
    :class:`~repro.runtime.costmodel.WorkRateMeter` (``work_meter``)
    observes as measured per-rank pushes/sec.
    """

    name = "?"
    #: Concrete kernel backend after resolution: "python" or "compiled".
    kernel_backend = "python"

    def _init_kernel_backend(
        self, kernel_backend, backend_map, work_meter, exec_tracer=None
    ) -> None:
        """Shared constructor tail: resolve backend names eagerly so a
        ``compiled`` request without numba fails at build time."""
        resolve = kernel_compiled.resolve_backend
        self.kernel_backend = (
            "python" if kernel_backend is None else resolve(kernel_backend)
        )
        self.backend_map = (
            {}
            if not backend_map
            else {int(r): resolve(b) for r, b in backend_map.items()}
        )
        self.work_meter = work_meter
        self.exec_tracer = exec_tracer

    def _backend_for(self, rank: int) -> str:
        return self.backend_map.get(rank, self.kernel_backend)

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def stats(self) -> dict:
        """Wall-clock / occupancy counters for reporting (never simulated)."""
        return {}


def _run_task(task, backend: str, workspace=None) -> None:
    """Run one task's push under the chosen kernel backend.

    The python path goes through ``task.run()`` (a dynamic
    ``kernel.advance`` call) so perf-harness monkeypatches keep applying;
    the compiled path calls the numba kernel on the particle fields.
    """
    if backend == "python":
        task.run(workspace)
    else:
        p = task.particles
        advance_arrays_compiled(
            task.mesh, p.x, p.y, p.vx, p.vy, p.q, task.dt
        )


class SerialExecutor(Executor):
    """Reference backend: each task inline, in park order."""

    name = "serial"

    def __init__(
        self,
        kernel_backend: str | None = None,
        backend_map=None,
        work_meter=None,
        exec_tracer=None,
    ) -> None:
        self._init_kernel_backend(
            kernel_backend, backend_map, work_meter, exec_tracer
        )
        self.batches = 0
        self._epoch: float | None = None

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        self.batches += 1
        measure = self.work_meter is not None or self.exec_tracer is not None
        if not measure:
            for rank, task in batch:
                _run_task(task, self._backend_for(rank))
            return
        if self._epoch is None:
            self._epoch = time.perf_counter()
        for rank, task in batch:
            n = len(task.particles)
            t0 = time.perf_counter()
            _run_task(task, self._backend_for(rank))
            dt = time.perf_counter() - t0
            if self.work_meter is not None:
                self.work_meter.record(rank, n, dt)
            if self.exec_tracer is not None:
                self.exec_tracer.record(
                    "task", rank, self.batches,
                    t0 - self._epoch, t0 - self._epoch + dt, n=n, rank=rank,
                )


class BatchedExecutor(Executor):
    """Fused backend: one kernel call over the concatenated batch.

    Tasks are grouped by ``(mesh, dt)`` (in practice one group); each
    group's field arrays are staged contiguously into a persistent buffer,
    advanced with a single :func:`advance_arrays` call, and copied back per
    rank segment.  Elementwise kernels are chunk-boundary-agnostic, so the
    fusion is bitwise exact; the staging copies are two extra passes traded
    against per-rank ufunc dispatch overhead.
    """

    name = "batched"

    #: x, y, vx, vy are copied back; q is read-only in the kernel.
    _N_STAGE_ROWS = 5

    def __init__(
        self,
        kernel_backend: str | None = None,
        backend_map=None,
        work_meter=None,
        exec_tracer=None,
    ) -> None:
        self._init_kernel_backend(
            kernel_backend, backend_map, work_meter, exec_tracer
        )
        self._stage = np.empty((self._N_STAGE_ROWS, 0), dtype=np.float64)
        self.batches = 0
        self.fused_tasks = 0

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        # Grouping by backend keeps fusion sound per kernel: a mixed
        # backend_map yields one fused call per (mesh, dt, backend).
        groups: dict[tuple, list] = {}
        order: list[tuple] = []
        for rank, task in batch:
            if len(task.particles) == 0:
                continue
            key = (task.mesh, task.dt, self._backend_for(rank))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((rank, task))
        self.batches += 1
        measure = self.work_meter is not None or self.exec_tracer is not None
        for key in order:
            mesh, dt, backend = key
            pairs = groups[key]
            t0 = time.perf_counter() if measure else 0.0
            if len(pairs) == 1:
                _run_task(pairs[0][1], backend)
            else:
                self.fused_tasks += len(pairs)
                self._run_fused(mesh, dt, backend, [t for _, t in pairs])
            if measure:
                elapsed = time.perf_counter() - t0
                total = sum(len(t.particles) for _, t in pairs)
                if self.exec_tracer is not None:
                    self.exec_tracer.record(
                        "execute", -1, self.batches, 0.0, elapsed,
                        tasks=len(pairs), n=total,
                    )
                if self.work_meter is not None and total:
                    # A fused group yields one timing; attribute it to the
                    # member ranks proportionally to their particle share.
                    for rank, t in pairs:
                        n = len(t.particles)
                        self.work_meter.record(rank, n, elapsed * n / total)

    def _run_fused(self, mesh: Mesh, dt: float, backend: str, tasks: list) -> None:
        total = sum(len(t.particles) for t in tasks)
        if self._stage.shape[1] < total:
            self._stage = np.empty(
                (self._N_STAGE_ROWS, max(total, 2 * self._stage.shape[1])),
                dtype=np.float64,
            )
        x, y, vx, vy, q = (self._stage[i, :total] for i in range(5))
        bounds = []
        o = 0
        for t in tasks:
            p = t.particles
            n = len(p)
            x[o : o + n] = p.x
            y[o : o + n] = p.y
            vx[o : o + n] = p.vx
            vy[o : o + n] = p.vy
            q[o : o + n] = p.q
            bounds.append((o, o + n))
            o += n
        if backend == "python":
            advance_arrays(mesh, x, y, vx, vy, q, dt)
        else:
            advance_arrays_compiled(mesh, x, y, vx, vy, q, dt)
        for t, (a, b) in zip(tasks, bounds):
            p = t.particles
            p.x[:] = x[a:b]
            p.y[:] = y[a:b]
            p.vx[:] = vx[a:b]
            p.vy[:] = vy[a:b]

    def stats(self) -> dict:
        return dict(batches=self.batches, fused_tasks=self.fused_tasks)


# ----------------------------------------------------------------------
# Shared-memory arena
# ----------------------------------------------------------------------
class _Segment:
    __slots__ = ("shm", "size", "base", "offset", "_anchor")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.size = shm.size
        # Anchor a uint8 view to read the mapping's base address; kept
        # referenced so the memoryview export stays valid for locate().
        self._anchor = np.frombuffer(shm.buf, dtype=np.uint8)
        self.base = self._anchor.__array_interface__["data"][0]
        self.offset = 0


class ShmArena:
    """Grow-only pool of shared-memory segments with bump allocation.

    :meth:`alloc` hands out writable ndarray views into the segments (the
    allocator signature :class:`~repro.core.particles.ParticleArray`'s
    ``rebase_backing`` expects).  There is no per-array free; instead the
    arena keeps weak references to every array it handed out and recycles
    *all* segments (bump pointers reset) once none of them is alive — which
    between simulation runs they are not.  :meth:`locate` maps an arena
    array back to ``(segment_name, byte_offset)`` for worker-side attach.
    """

    def __init__(self, min_segment_bytes: int = 1 << 22) -> None:
        self._segments: list[_Segment] = []
        self._live: list[weakref.ref] = []
        self._min = int(min_segment_bytes)
        self._closed = False

    def alloc(self, capacity: int, dtype) -> np.ndarray:
        if self._closed:
            raise RuntimeError("allocation from a closed ShmArena")
        dtype = np.dtype(dtype)
        nbytes = -(-max(int(capacity), 0) * dtype.itemsize // _ALIGN) * _ALIGN
        self._reclaim()
        seg = next(
            (s for s in self._segments if s.size - s.offset >= nbytes), None
        )
        if seg is None:
            from multiprocessing import shared_memory

            size = max(nbytes, self._min, 2 * (self._segments[-1].size if self._segments else 0))
            seg = _Segment(shared_memory.SharedMemory(create=True, size=size))
            self._segments.append(seg)
        arr = np.frombuffer(
            seg.shm.buf, dtype=dtype, count=int(capacity), offset=seg.offset
        )
        seg.offset += nbytes
        self._live.append(weakref.ref(arr))
        return arr

    def _reclaim(self) -> None:
        self._live = [r for r in self._live if r() is not None]
        if not self._live:
            for seg in self._segments:
                seg.offset = 0

    def locate(self, arr: np.ndarray) -> tuple[str, int] | None:
        """``(segment_name, byte_offset)`` of an arena-resident array."""
        ptr = arr.__array_interface__["data"][0]
        for seg in self._segments:
            if seg.base <= ptr < seg.base + seg.size:
                return seg.shm.name, ptr - seg.base
        return None

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._live.clear()
        for seg in self._segments:
            seg._anchor = None
            try:
                seg.shm.close()
            except BufferError:
                # A handed-out view is still alive; parking the handle in
                # the zombie list keeps its __del__ from firing (and
                # raising the same BufferError as an unraisable warning)
                # until the views are gone — the unlink below already
                # released the name, so nothing leaks past process exit.
                _ZOMBIE_SEGMENTS.append(seg.shm)
            try:
                seg.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _attach_segment(name: str):
    """Attach to an existing segment without taking cleanup ownership.

    ``track=False`` (3.13+) skips resource-tracker registration entirely.
    On older Pythons the attach re-registers the name — harmless, because
    worker processes share the parent's tracker (the fd is inherited on
    both fork and spawn starts) and registration is a set-add; the parent's
    ``unlink`` still unregisters exactly once.  Do NOT explicitly
    unregister here: that would strip the *parent's* registration from the
    shared tracker and make the later unlink double-unregister.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: tracked attach, see above
        return shared_memory.SharedMemory(name=name)


def _worker_main(conn, kernel_backend: str = "python") -> None:
    """Worker loop: receive task descriptors, push particles in place.

    A descriptor is ``(field_locs, n, mesh_args, dt, backend)`` where
    ``field_locs`` is five ``(segment_name, byte_offset)`` pairs for x, y,
    vx, vy, q and ``backend`` names the kernel to run it under.  All work
    happens through shared-memory views; the reply is
    ``(execute_seconds, particles_pushed, per_task)`` with ``per_task`` a
    list of ``(seconds, n)`` in descriptor order.

    ``kernel_backend`` is the pool's fleet-wide backend: when it (or any
    per-rank override — the parent passes "compiled" if *any* rank may use
    it) needs the JIT, the worker compiles the numba kernel *before* the
    ready handshake, so the one-time warm-up lands in ``pool_startup_s`` /
    ``jit_warmup_s`` and never inside a timed step.
    """
    segments: dict[str, Any] = {}
    workspace = KernelWorkspace()
    mesh_cache: dict[tuple, Mesh] = {}
    warm_s = kernel_compiled.warmup(kernel_backend)
    conn.send(("ready", os.getpid(), warm_s))
    views = []
    while True:
        try:
            msg = conn.recv()
        except EOFError:  # pragma: no cover - parent died
            break
        if msg is None:
            break
        t0 = time.perf_counter()
        pushed = 0
        per_task = []
        for field_locs, n, mesh_args, dt, backend in msg:
            t1 = time.perf_counter()
            del views[:]
            for seg_name, off in field_locs:
                shm = segments.get(seg_name)
                if shm is None:
                    shm = _attach_segment(seg_name)
                    segments[seg_name] = shm
                views.append(
                    np.frombuffer(shm.buf, dtype=np.float64, count=n, offset=off)
                )
            mesh = mesh_cache.get(mesh_args)
            if mesh is None:
                mesh = Mesh(*mesh_args)
                mesh_cache[mesh_args] = mesh
            if backend == "python":
                advance_arrays(mesh, *views, dt, workspace=workspace)
            else:
                advance_arrays_compiled(mesh, *views, dt)
            pushed += n
            per_task.append((time.perf_counter() - t1, n))
        del views[:]
        conn.send((time.perf_counter() - t0, pushed, per_task))
    for shm in segments.values():
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass
    conn.close()


def _partition(sizes: list[int], k: int) -> list[list[int]]:
    """Deterministic LPT: largest task to least-loaded worker, stable ties."""
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    loads = [0] * k
    bins: list[list[int]] = [[] for _ in range(k)]
    for i in order:
        b = min(range(k), key=lambda j: (loads[j], j))
        bins[b].append(i)
        loads[b] += sizes[i]
    for b in bins:
        b.sort()
    return bins


class ProcessExecutor(Executor):
    """Real-multicore backend: persistent worker pool over shared memory.

    ``workers=0`` means one per host core.  The pool and arena are lazily
    started on the first batch and survive across runs — benchmark
    repetitions and whole test suites reuse one warmed pool
    (``pool_startup_s`` reports the one-time fork/spawn cost separately).

    Optional ``exec_tracer`` (:class:`repro.instrument.ExecutorTrace`)
    receives per-batch dispatch/execute/merge spans on a *wall-clock*
    timebase.  They are deliberately kept out of the simulated-time
    :class:`~repro.instrument.Tracer` so golden traces stay byte-identical
    across backends and runs.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 0,
        exec_tracer=None,
        mp_context: str | None = None,
        kernel_backend: str | None = None,
        backend_map=None,
        work_meter=None,
    ) -> None:
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError("need at least one worker")
        self._init_kernel_backend(
            kernel_backend, backend_map, work_meter, exec_tracer
        )
        self._ctx_name = mp_context or os.environ.get("REPRO_MP_CONTEXT", "spawn")
        self.arena = ShmArena()
        self._procs: list = []
        self._conns: list = []
        self._epoch: float | None = None
        self.pool_startup_s = 0.0
        self.jit_warmup_s = 0.0
        self.batches = 0
        self.tasks_executed = 0
        self.particles_pushed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the pool (idempotent); records ``pool_startup_s``."""
        if self._procs:
            return
        import multiprocessing as mp

        t0 = time.perf_counter()
        ctx = mp.get_context(self._ctx_name)
        # Workers pre-warm the JIT whenever any rank may run compiled.
        warm_backend = self.kernel_backend
        if warm_backend == "python" and "compiled" in self.backend_map.values():
            warm_backend = "compiled"
        for i in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, warm_backend),
                name=f"repro-exec-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for conn in self._conns:
            msg = conn.recv()  # ready handshake
            self.jit_warmup_s = max(self.jit_warmup_s, msg[2])
        self.pool_startup_s = time.perf_counter() - t0
        self._epoch = time.perf_counter()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _field_locs(self, particles) -> list[tuple[str, int]]:
        """Arena locations of the five kernel fields; rebase on first miss."""
        fields = (particles.x, particles.y, particles.vx, particles.vy, particles.q)
        locs = [self.arena.locate(a) for a in fields]
        if any(loc is None for loc in locs):
            particles.rebase_backing(self.arena.alloc)
            fields = (particles.x, particles.y, particles.vx, particles.vy, particles.q)
            locs = [self.arena.locate(a) for a in fields]
            assert all(loc is not None for loc in locs)
        return locs

    def run_batch(self, batch: list[tuple[int, Any]]) -> None:
        work = [(r, t) for r, t in batch if len(t.particles)]
        if not work:
            return
        self.start()
        t_d0 = self._now()
        descs = []
        for rank, task in work:
            m = task.mesh
            descs.append(
                (
                    self._field_locs(task.particles),
                    len(task.particles),
                    (m.cells, m.h, m.q),
                    task.dt,
                    self._backend_for(rank),
                )
            )
        sizes = [d[1] for d in descs]
        bins = _partition(sizes, self.workers)
        used = []
        for w, idxs in enumerate(bins):
            if idxs:
                self._conns[w].send([descs[i] for i in idxs])
                used.append(w)
        t_sent = self._now()
        # Merge: collect completions in fixed worker order.  Workers wrote
        # disjoint shared-memory regions in place, so "merge" is the
        # deterministic completion barrier, not a copy.
        durations: dict[int, float] = {}
        tasks_by_worker: dict[int, list] = {}
        for w in used:
            dur, pushed, per_task = self._conns[w].recv()
            durations[w] = dur
            tasks_by_worker[w] = per_task
            self.particles_pushed += pushed
        t_merged = self._now()
        self.batches += 1
        self.tasks_executed += len(work)
        if self.work_meter is not None:
            for w in used:
                for i, (task_s, n) in zip(bins[w], tasks_by_worker[w]):
                    self.work_meter.record(work[i][0], n, task_s)
        tr = self.exec_tracer
        if tr is not None:
            tr.record("dispatch", -1, self.batches, t_d0, t_sent, tasks=len(work))
            for w in used:
                tr.record(
                    "execute", w, self.batches, t_sent, t_sent + durations[w],
                    tasks=len(bins[w]),
                )
                # Per-task wall spans on the worker's sequential timeline,
                # tagged with the owning world rank: the measured-rate
                # evidence behind WorkRateMeter, kept out of golden traces.
                t_task = t_sent
                for i, (task_s, n) in zip(bins[w], tasks_by_worker[w]):
                    tr.record(
                        "task", w, self.batches, t_task, t_task + task_s,
                        rank=work[i][0], n=n,
                    )
                    t_task += task_s
            tr.record("merge", -1, self.batches, t_sent, t_merged, tasks=len(used))

    def stats(self) -> dict:
        return dict(
            workers=self.workers,
            pool_startup_s=self.pool_startup_s,
            jit_warmup_s=self.jit_warmup_s,
            kernel_backend=self.kernel_backend,
            batches=self.batches,
            tasks_executed=self.tasks_executed,
            particles_pushed=self.particles_pushed,
            arena_bytes=self.arena.total_bytes,
        )

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._procs.clear()
        self._conns.clear()
        self.arena.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def make_executor(
    name: str,
    workers: int = 0,
    exec_tracer=None,
    kernel_backend: str | None = None,
    backend_map=None,
    work_meter=None,
) -> Executor:
    """Build a backend by name (the CLI's ``--executor`` values).

    ``kernel_backend`` is a request name (python/compiled/auto, None =
    python); it is resolved eagerly, so asking for ``compiled`` without
    numba raises here, not mid-run.
    """
    kw = dict(
        kernel_backend=kernel_backend,
        backend_map=backend_map,
        work_meter=work_meter,
        exec_tracer=exec_tracer,
    )
    if name == "serial":
        return SerialExecutor(**kw)
    if name == "batched":
        return BatchedExecutor(**kw)
    if name == "process":
        return ProcessExecutor(workers=workers, **kw)
    raise ValueError(f"unknown executor {name!r} (serial, batched, process)")


_DEFAULT: Executor | None = None


def default_executor() -> Executor:
    """Process-wide executor from ``REPRO_EXECUTOR`` / ``REPRO_WORKERS``.

    Cached so that every scheduler in the process (e.g. a whole test-suite
    run under ``REPRO_EXECUTOR=process``) shares one warmed worker pool.
    The env parsing (and the full CLI > env > spec > default precedence
    chain) lives in :mod:`repro.config.env`.
    """
    global _DEFAULT
    if _DEFAULT is None:
        from repro.config.env import (
            resolve_executor,
            resolve_kernel_backend,
            resolve_workers,
        )

        _DEFAULT = make_executor(
            resolve_executor(),
            workers=resolve_workers(),
            kernel_backend=resolve_kernel_backend(),
        )
        if isinstance(_DEFAULT, ProcessExecutor):
            atexit.register(_DEFAULT.close)
    return _DEFAULT
