"""2D Cartesian communicator for the simulated MPI runtime.

The paper's implementations arrange processors in a ``Px x Py`` grid with
periodic boundaries (§IV-A).  :class:`CartComm` adds coordinate bookkeeping
and neighbor lookup on top of :class:`repro.runtime.comm.Comm`.

Coordinates are row-major: local rank ``r`` has coordinates
``(r // Py, r % Py)`` — i.e. ``x`` (the column of processors) varies slowest.
"""

from __future__ import annotations

from repro.runtime.comm import Comm


class CartComm(Comm):
    """A communicator with a periodic 2D Cartesian topology."""

    def __init__(self, scheduler, comm_id, world_ranks, rank, dims, periodic=True):
        super().__init__(scheduler, comm_id, world_ranks, rank)
        self.dims = tuple(dims)
        self.periodic = periodic
        if self.dims[0] * self.dims[1] != self.size:
            raise ValueError(
                f"dims {self.dims} do not match communicator size {self.size}"
            )
        self._shift_cache: dict[tuple[int, int], tuple[int | None, int | None]] = {}

    # ------------------------------------------------------------------
    @property
    def px(self) -> int:
        """Processor-grid extent in x (columns of processors)."""
        return self.dims[0]

    @property
    def py(self) -> int:
        """Processor-grid extent in y (rows of processors)."""
        return self.dims[1]

    @property
    def coords(self) -> tuple[int, int]:
        """This rank's Cartesian coordinates ``(cx, cy)``."""
        return self.coords_of(self.rank)

    def coords_of(self, rank: int) -> tuple[int, int]:
        self._check_peer(rank)
        return rank // self.py, rank % self.py

    def rank_at(self, cx: int, cy: int) -> int | None:
        """Local rank at coordinates, wrapping periodically.

        Returns None for out-of-range coordinates on a non-periodic grid.
        """
        if self.periodic:
            cx %= self.px
            cy %= self.py
        elif not (0 <= cx < self.px and 0 <= cy < self.py):
            return None
        return cx * self.py + cy

    def shift(self, dim: int, displacement: int = 1) -> tuple[int | None, int | None]:
        """(source, destination) ranks for a shift along ``dim`` (0=x, 1=y).

        Mirrors MPI_Cart_shift: ``dst`` is the neighbor ``displacement``
        steps in the positive direction, ``src`` the mirror neighbor.
        Results are cached — the topology never changes.
        """
        key = (dim, displacement)
        cached = self._shift_cache.get(key)
        if cached is not None:
            return cached
        cx, cy = self.coords
        if dim == 0:
            dst = self.rank_at(cx + displacement, cy)
            src = self.rank_at(cx - displacement, cy)
        elif dim == 1:
            dst = self.rank_at(cx, cy + displacement)
            src = self.rank_at(cx, cy - displacement)
        else:
            raise ValueError("dim must be 0 (x) or 1 (y)")
        self._shift_cache[key] = (src, dst)
        return src, dst

    def neighbors8(self) -> dict[tuple[int, int], int]:
        """All eight surrounding ranks keyed by offset ``(dx, dy)``.

        On a periodic grid with fewer than 3 ranks along a dimension, several
        offsets can map to the same rank; callers that enumerate distinct
        communication partners should de-duplicate the values.
        """
        cx, cy = self.coords
        out: dict[tuple[int, int], int] = {}
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                r = self.rank_at(cx + dx, cy + dy)
                if r is not None:
                    out[(dx, dy)] = r
        return out

    # ------------------------------------------------------------------
    # Sub-communicators (MPI_Cart_sub analogue)
    # ------------------------------------------------------------------
    def sub_x(self):
        """Collective: communicator of the ranks sharing this rank's cy.

        The result groups ranks along the x direction (one per processor
        column), ordered by cx — used for the per-row reductions of the 2D
        diffusion scheme (§IV-B).  Must be yielded.
        """
        cx, cy = self.coords
        return self.split(color=cy, key=cx)

    def sub_y(self):
        """Collective: communicator of the ranks sharing this rank's cx."""
        cx, cy = self.coords
        return self.split(color=cx, key=cy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CartComm(id={self.comm_id}, rank={self.rank}, dims={self.dims}, "
            f"coords={self.coords})"
        )
