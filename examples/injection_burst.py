#!/usr/bin/env python3
"""Dynamic work creation: particle injection and removal (§III-E5).

Starts from a perfectly balanced uniform distribution, then injects a dense
patch of new particles into one corner mid-run and later removes half the
particles from a band of the domain.  The static decomposition has no
answer to either shock; the balanced implementations adapt.

Every injected particle is still analytically verifiable (it carries its
birth step), and the id checksum accounts for the removals — so the run
proves not just performance but correctness of all the data movement.

Run:  python examples/injection_burst.py
"""

from repro.core.spec import (
    Distribution,
    InjectionEvent,
    PICSpec,
    Region,
    RemovalEvent,
)
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

CORES = 24


def main():
    machine = MachineModel()
    cost = CostModel(machine=machine, particle_push_s=3.5e-6)
    cells = 288
    spec = PICSpec(
        cells=cells,
        n_particles=12_000,
        steps=150,
        distribution=Distribution.UNIFORM,
        events=(
            # Step 30: dump 24,000 particles into the lower-left 48x48 cells.
            InjectionEvent(step=30, region=Region(0, 48, 0, 48), count=24_000),
            # Step 90: evaporate half the particles in the middle band.
            RemovalEvent(step=90, region=Region(96, 192, 0, cells), fraction=0.5),
        ),
    )
    print(f"workload: {spec.describe()} on {CORES} simulated cores\n")

    for name, impl in [
        ("mpi-2d (static)", Mpi2dPIC(spec, CORES, machine=machine, cost=cost)),
        (
            "mpi-2d-LB",
            Mpi2dLbPIC(
                spec, CORES, machine=machine, cost=cost,
                lb_interval=2, border_width=3, threshold_fraction=0.02,
            ),
        ),
        (
            "ampi",
            AmpiPIC(
                spec, CORES, machine=machine, cost=cost,
                overdecomposition=8, lb_interval=15,
            ),
        ),
    ]:
        res = impl.run()
        v = res.verification
        print(
            f"{name:<18} sim time {res.total_time:7.3f}s   "
            f"max particles/core {res.max_particles_per_core:>6}   "
            f"final n={v.n_particles}   verified={v.ok}"
        )

    print(
        "\nInjected particles carry their birth step, so the closed-form "
        "verification still\nholds; removals are deterministic by particle-id "
        "hash, so every decomposition\nremoves the same particles and the id "
        "checksum stays exact."
    )


if __name__ == "__main__":
    main()
