#!/usr/bin/env python3
"""Quickstart: specify, run and verify a PIC PRK instance (serial).

The PIC PRK is *self-verifying*: the constrained initialization (paper
§III-C) makes every particle's trajectory analytically known, so after any
number of steps the simulation can check itself exactly — which is what
makes the kernel usable as a correctness-preserving benchmark for load
balancers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Distribution, PICSpec, run_serial
from repro.core.simulation import serial_work_profile


def ascii_histogram(profile, width=60, label="column"):
    top = profile.max() or 1
    step = max(1, len(profile) // 16)
    lines = []
    for i in range(0, len(profile), step):
        chunk = profile[i : i + step].mean()
        bar = "#" * int(round(chunk / top * width))
        lines.append(f"{label} {i:4d}  {bar} {chunk:.0f}")
    return "\n".join(lines)


def main():
    # A 128x128-cell periodic domain, 20,000 particles in the paper's skewed
    # geometric distribution, drifting one cell per step (k=0) and two cells
    # per step vertically (m=2).
    spec = PICSpec(
        cells=128,
        n_particles=20_000,
        steps=100,
        distribution=Distribution.GEOMETRIC,
        r=0.97,
        k=0,
        m_vertical=2,
    )
    print(f"spec: {spec.describe()}")

    print("\nInitial particles per cell column (the induced load imbalance):")
    print(ascii_histogram(serial_work_profile(spec)))

    result = run_serial(spec)
    v = result.verification
    print(f"\nafter {result.steps} steps: {v}")
    print(f"total particle pushes: {result.particle_pushes:,}")
    assert v.ok, "verification must pass"

    # The closed form behind the verification (Eqs. 5-6): every particle
    # moved exactly (2k+1)*steps cells right and m*steps cells up, modulo L.
    p = result.particles
    s = spec.steps
    expected_x = np.mod(p.x0 + (2 * spec.k + 1) * s * spec.h, spec.L)
    print(
        "max |x - closed_form(x)| =",
        float(np.abs(np.minimum(np.abs(p.x - expected_x),
                                spec.L - np.abs(p.x - expected_x))).max()),
    )


if __name__ == "__main__":
    main()
