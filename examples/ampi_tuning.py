#!/usr/bin/env python3
"""Mini version of the paper's Fig. 5: tuning the AMPI runtime knobs.

Adaptive MPI exposes two tunables: how often the load balancer runs
(interval F) and how far the problem is over-decomposed (d virtual
processors per core).  The paper shows both must be co-tuned — too-frequent
balancing thrashes, too-rare balancing leaves imbalance; no
over-decomposition gives the balancer nothing to move, while extreme
over-decomposition drowns in scheduling overhead.

Run:  python examples/ampi_tuning.py      (~1 minute)
"""

from repro.ampi.loadbalancer import GreedyLB
from repro.core.spec import PICSpec
from repro.parallel import AmpiPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

CORES = 24


def sparkline(values):
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)


def main():
    machine = MachineModel()
    cost = CostModel(
        machine=machine,
        particle_push_s=3.5e-6,
        particle_pack_s=25 * 1.5e-8,
        particle_byte_scale=25.0,   # price communication at paper-like volume
        cell_byte_scale=100.0,
    )
    spec = PICSpec(cells=288, n_particles=12_000, steps=120, r=0.99)
    print(f"workload: {spec.describe()} on {CORES} simulated cores\n")

    print("sweep 1: LB interval F (fixed d=4)")
    f_values = (2, 4, 8, 16, 32, 64)
    f_times = []
    for f in f_values:
        res = AmpiPIC(
            spec, CORES, machine=machine, cost=cost,
            overdecomposition=4, lb_interval=f,
            strategy=GreedyLB(),  # the churn-heavy Charm++ strategy of Fig. 5
        ).run()
        assert res.verification.ok
        f_times.append(res.total_time)
        print(f"  F={f:<3d} -> {res.total_time:.3f}s")
    print(f"  {sparkline(f_times)}   best F={f_values[f_times.index(min(f_times))]}, "
          f"worst/best = {max(f_times) / min(f_times):.2f}x\n")

    print("sweep 2: over-decomposition d (fixed F=24)")
    d_values = (1, 2, 4, 8, 16)
    d_times = []
    for d in d_values:
        res = AmpiPIC(
            spec, CORES, machine=machine, cost=cost,
            overdecomposition=d, lb_interval=24,
            strategy=GreedyLB(),
        ).run()
        assert res.verification.ok
        d_times.append(res.total_time)
        print(f"  d={d:<3d} -> {res.total_time:.3f}s")
    print(f"  {sparkline(d_times)}   best d={d_values[d_times.index(min(d_times))]}, "
          f"d=1/best = {d_times[0] / min(d_times):.2f}x")

    print(
        "\nPaper Fig. 5 (192 cores, full scale): 4.2x between the most "
        "frequent and the best F;\n2.2x between d=1 and d=16."
    )


if __name__ == "__main__":
    main()
