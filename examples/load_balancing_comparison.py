#!/usr/bin/env python3
"""Compare the three parallel implementations on a skewed workload.

Reproduces, at laptop scale, the experiment of the paper's Fig. 6 left at
24 cores: the geometric particle cloud drifts across the domain, the static
``mpi-2d`` decomposition suffers, the diffusion-balanced ``mpi-2d-LB``
tracks the cloud, and the AMPI-style runtime balances by migrating virtual
processors.

All three implementations run on the simulated MPI runtime: reported times
are *simulated* seconds on an Edison-like machine model, and each run ends
with the PRK's exact self-verification.

Run:  python examples/load_balancing_comparison.py
"""

from repro.core.spec import PICSpec
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

CORES = 24


def main():
    machine = MachineModel()  # 2 sockets x 12 cores per node, Aries-like net
    cost = CostModel(machine=machine, particle_push_s=3.5e-6)
    spec = PICSpec(cells=288, n_particles=24_000, steps=150, r=0.99)
    serial = cost.push_time(spec.n_particles) * spec.steps

    print(f"workload: {spec.describe()} on {CORES} simulated cores")
    print(f"serial model time: {serial:.2f}s  "
          f"(ideal particles/core: {spec.n_particles / CORES:.0f})\n")

    implementations = [
        ("mpi-2d (baseline)", Mpi2dPIC(spec, CORES, machine=machine, cost=cost)),
        (
            "mpi-2d-LB (diffusion)",
            Mpi2dLbPIC(
                spec, CORES, machine=machine, cost=cost,
                lb_interval=2, border_width=3, threshold_fraction=0.02,
            ),
        ),
        (
            "ampi (VP migration)",
            AmpiPIC(
                spec, CORES, machine=machine, cost=cost,
                overdecomposition=8, lb_interval=25,
            ),
        ),
    ]

    baseline_time = None
    print(f"{'implementation':<24} {'sim time':>9} {'speedup':>8} "
          f"{'vs base':>8} {'max p/core':>11} {'verified':>9}")
    for name, impl in implementations:
        res = impl.run()
        if baseline_time is None:
            baseline_time = res.total_time
        print(
            f"{name:<24} {res.total_time:8.3f}s {serial / res.total_time:7.1f}x "
            f"{baseline_time / res.total_time:7.2f}x {res.max_particles_per_core:>11} "
            f"{str(res.verification.ok):>9}"
        )

    print(
        "\nThe paper's Fig. 6 (left) reports the same ordering at 24 cores: "
        "diffusion LB ~1.6x\nand AMPI ~1.3x over the baseline, with the "
        "baseline's max particles/core more than\ntwice the ideal."
    )


if __name__ == "__main__":
    main()
