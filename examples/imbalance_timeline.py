#!/usr/bin/env python3
"""Watch load imbalance evolve — and the balancers fight it.

The geometric particle cloud (paper §III-E1) drifts one cell per step, so a
static decomposition's imbalance is a moving wave: whichever processor
column currently hosts the cloud's crest is overloaded.  This example
traces per-core loads every step (the simulator can observe them without
perturbing the run) and renders the imbalance timeline for all three
implementations, with load-balancing events marked.

Run:  python examples/imbalance_timeline.py
"""

from repro.core.spec import PICSpec
from repro.instrument import TraceCollector, render_imbalance_timeline
from repro.parallel import AmpiPIC, Mpi2dLbPIC, Mpi2dPIC
from repro.runtime.costmodel import CostModel
from repro.runtime.machine import MachineModel

CORES = 16


def main():
    machine = MachineModel()
    cost = CostModel(machine=machine, particle_push_s=3.5e-6)
    spec = PICSpec(cells=192, n_particles=12_000, steps=160, r=0.985)
    print(f"workload: {spec.describe()} on {CORES} simulated cores\n")

    for name, make in [
        ("mpi-2d (static decomposition)", lambda tr: Mpi2dPIC(
            spec, CORES, machine=machine, cost=cost, tracer=tr)),
        ("mpi-2d-LB (diffusion, tracks the cloud)", lambda tr: Mpi2dLbPIC(
            spec, CORES, machine=machine, cost=cost, tracer=tr,
            lb_interval=2, border_width=3, threshold_fraction=0.02)),
        ("ampi (VP migration)", lambda tr: AmpiPIC(
            spec, CORES, machine=machine, cost=cost, tracer=tr,
            overdecomposition=8, lb_interval=20)),
    ]:
        tracer = TraceCollector()
        result = make(tracer).run()
        assert result.verification.ok
        series = tracer.imbalance_series()
        print(f"=== {name} ===")
        print(render_imbalance_timeline(tracer))
        print(
            f"    simulated time {result.total_time:.3f}s | "
            f"mean imbalance {series.mean():.2f} | "
            f"final max/ideal {result.max_particles_per_core / (spec.n_particles / CORES):.2f}"
        )
        if tracer.boundary_moves_total():
            print(f"    boundary columns moved: {tracer.boundary_moves_total()}")
        if tracer.migrations_total():
            print(f"    VP migrations: {tracer.migrations_total()}")
        print()


if __name__ == "__main__":
    main()
